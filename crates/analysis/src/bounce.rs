//! `PORT`-validation and NAT analysis (§VII-B).

use crate::writable;
use enumerator::HostRecord;
use ftp_proto::SoftwareFamily;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// §VII-B summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BounceSummary {
    /// Anonymous servers probed for `PORT` validation.
    pub probed: u64,
    /// Servers that accepted a third-party `PORT` (replied 200).
    pub accepted: u64,
    /// Of those, servers whose bounce connection the collector actually
    /// observed (confirmation join).
    pub confirmed: u64,
    /// Servers detected behind NAT (PASV advertised a private or
    /// mismatching address).
    pub nat: u64,
    /// NATed servers that also accept third-party `PORT`s — the paper's
    /// internal-network-scan pivot (846 servers).
    pub nat_and_vulnerable: u64,
    /// World-writable servers that also fail validation — the classic
    /// bounce-attack combination (1 973 servers).
    pub writable_and_vulnerable: u64,
    /// FileZilla servers observed (banner), the §VII-B 409 K population.
    pub filezilla_total: u64,
}

/// True when the PASV reply revealed NAT deployment: the advertised
/// address is RFC 1918 or differs from the host's public address.
pub fn is_nated(record: &HostRecord) -> bool {
    match record.pasv_addr {
        Some(hp) => hp.ip().is_private() || hp.ip() != record.ip,
        None => false,
    }
}

/// Computes the §VII-B statistics. `collector_hits` is the set of server
/// addresses whose bounced connections the study's collector observed.
pub fn summarize(records: &[HostRecord], collector_hits: &HashSet<Ipv4Addr>) -> BounceSummary {
    let writable = writable::detect(records, None).servers;
    let mut s = BounceSummary::default();
    for r in records.iter().filter(|r| r.ftp_compliant) {
        if r.banner.as_deref().map(|b| {
            ftp_proto::Banner::parse(b).software().family == SoftwareFamily::FileZilla
        }) == Some(true)
        {
            s.filezilla_total += 1;
        }
        let nated = is_nated(r);
        if nated {
            s.nat += 1;
        }
        match r.port_accepts_third_party {
            Some(true) => {
                s.probed += 1;
                s.accepted += 1;
                if collector_hits.contains(&r.ip) {
                    s.confirmed += 1;
                }
                if nated {
                    s.nat_and_vulnerable += 1;
                }
                if writable.contains(&r.ip) {
                    s.writable_and_vulnerable += 1;
                }
            }
            Some(false) => s.probed += 1,
            None => {}
        }
    }
    s
}

impl BounceSummary {
    /// The paper's 12.74%: acceptance rate among probed servers.
    pub fn acceptance_rate(&self) -> f64 {
        if self.probed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.probed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enumerator::{FileEntry, LoginOutcome};
    use ftp_proto::listing::Readability;
    use ftp_proto::HostPort;

    fn rec(ip: [u8; 4]) -> HostRecord {
        let mut r = HostRecord::new(Ipv4Addr::from(ip));
        r.ftp_compliant = true;
        r.login = LoginOutcome::Anonymous;
        r
    }

    #[test]
    fn nat_detection() {
        let mut r = rec([8, 8, 8, 8]);
        r.pasv_addr = Some(HostPort::new(Ipv4Addr::new(192, 168, 0, 10), 50_000));
        assert!(is_nated(&r));
        let mut honest = rec([8, 8, 8, 8]);
        honest.pasv_addr = Some(HostPort::new(Ipv4Addr::new(8, 8, 8, 8), 50_000));
        assert!(!is_nated(&honest));
        assert!(!is_nated(&rec([8, 8, 8, 8])), "no PASV observed");
    }

    #[test]
    fn summary_joins() {
        let mut vulnerable = rec([1, 0, 0, 1]);
        vulnerable.port_accepts_third_party = Some(true);
        vulnerable.files = vec![FileEntry {
            path: "/up/sjutd.txt".into(),
            is_dir: false,
            size: Some(1),
            readability: Readability::Readable,
            owner: None,
            other_writable: None,
        }]
        .into();
        let mut safe = rec([1, 0, 0, 2]);
        safe.port_accepts_third_party = Some(false);
        let mut nat_vuln = rec([1, 0, 0, 3]);
        nat_vuln.port_accepts_third_party = Some(true);
        nat_vuln.pasv_addr = Some(HostPort::new(Ipv4Addr::new(10, 0, 0, 5), 50_000));
        let mut fz = rec([1, 0, 0, 4]);
        fz.banner = Some("FileZilla Server version 0.9.41 beta".into());

        let hits: HashSet<Ipv4Addr> = [Ipv4Addr::new(1, 0, 0, 1)].into_iter().collect();
        let s = summarize(&[vulnerable, safe, nat_vuln, fz], &hits);
        assert_eq!(s.probed, 3);
        assert_eq!(s.accepted, 2);
        assert_eq!(s.confirmed, 1);
        assert_eq!(s.nat, 1);
        assert_eq!(s.nat_and_vulnerable, 1);
        assert_eq!(s.writable_and_vulnerable, 1);
        assert_eq!(s.filezilla_total, 1);
        assert!((s.acceptance_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let s = summarize(&[], &HashSet::new());
        assert_eq!(s.acceptance_rate(), 0.0);
    }
}
