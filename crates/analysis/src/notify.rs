//! Responsible-disclosure digests (§III-A).
//!
//! The paper: *"We are working to notify responsible entities in likely
//! instances of sensitive information disclosure."* This module builds
//! those notifications: per-AS digests of affected hosts grouped by
//! issue class. Deliberately, digests contain **counts and issue
//! classes only — never file names or paths** — matching the paper's
//! decision not to publish anything that would let a third party
//! trivially retrieve the exposed data.

use crate::{exposure, writable};
use enumerator::HostRecord;
use netsim::{AsRegistry, Asn};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Issue classes a notification can raise.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum Issue {
    /// Sensitive files (Table IX classes) publicly readable.
    SensitiveExposure,
    /// Anonymous write access evidenced.
    WorldWritable,
    /// `PORT` validation missing (bounce-attack proxy).
    BounceVulnerable,
    /// An operating-system root is published.
    OsRootExposed,
    /// Known-vulnerable daemon version advertised.
    VulnerableVersion,
}

impl Issue {
    fn describe(self) -> &'static str {
        match self {
            Issue::SensitiveExposure => {
                "hosts expose sensitive files (financial/key material/mail archives) to anonymous users"
            }
            Issue::WorldWritable => "hosts allow anonymous uploads and show abuse artifacts",
            Issue::BounceVulnerable => {
                "hosts accept third-party PORT commands and can proxy attacks"
            }
            Issue::OsRootExposed => "hosts publish an entire operating-system root",
            Issue::VulnerableVersion => {
                "hosts advertise daemon versions with public CVEs"
            }
        }
    }
}

/// One per-AS notification digest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Digest {
    /// The network's AS number.
    pub asn: u32,
    /// Organization name from the registry.
    pub organization: String,
    /// Issue → affected-host count. No hostnames, paths, or file names.
    pub issues: BTreeMap<Issue, u64>,
}

impl Digest {
    /// Total affected hosts (hosts with multiple issues counted once per
    /// issue).
    pub fn total_findings(&self) -> u64 {
        self.issues.values().sum()
    }

    /// Renders the notification email body.
    pub fn render(&self) -> String {
        let mut out = format!(
            "To the network operations contact for AS{} ({}):\n\
             During an authorized measurement study of public FTP services\n\
             we observed the following within your network:\n",
            self.asn, self.organization
        );
        for (issue, count) in &self.issues {
            out.push_str(&format!("  - {count} {}\n", issue.describe()));
        }
        out.push_str(
            "Per-host details are available to the verified network owner on\n\
             request. No file contents were retrieved in bulk and no exhaustive\n\
             listing will be published.\n",
        );
        out
    }
}

/// Issues detected for a single host (observable evidence only).
pub fn issues_of(record: &HostRecord) -> Vec<Issue> {
    let mut out = Vec::new();
    if exposure::exposes_sensitive(record) {
        out.push(Issue::SensitiveExposure);
    }
    if writable::appears_writable(record) {
        out.push(Issue::WorldWritable);
    }
    if record.port_accepts_third_party == Some(true) {
        out.push(Issue::BounceVulnerable);
    }
    if exposure::os_root_of(record).is_some() {
        out.push(Issue::OsRootExposed);
    }
    if record
        .banner
        .as_deref()
        .map(|b| !crate::cve::cves_of_banner(b).is_empty())
        .unwrap_or(false)
    {
        out.push(Issue::VulnerableVersion);
    }
    out
}

/// Builds one digest per AS that has at least one finding, ordered by
/// finding count (largest first) — the notification priority queue.
pub fn build_digests(records: &[HostRecord], registry: &AsRegistry) -> Vec<Digest> {
    let mut by_as: HashMap<Asn, BTreeMap<Issue, u64>> = HashMap::new();
    for r in records.iter().filter(|r| r.ftp_compliant) {
        let issues = issues_of(r);
        if issues.is_empty() {
            continue;
        }
        let Some(asn) = registry.lookup(r.ip) else { continue };
        let entry = by_as.entry(asn).or_default();
        for issue in issues {
            *entry.entry(issue).or_default() += 1;
        }
    }
    let mut digests: Vec<Digest> = by_as
        .into_iter()
        .map(|(asn, issues)| Digest {
            asn: asn.0,
            organization: registry
                .info(asn)
                .map(|i| i.name.clone())
                .unwrap_or_else(|| "unknown".to_owned()),
            issues,
        })
        .collect();
    digests.sort_by(|a, b| {
        b.total_findings().cmp(&a.total_findings()).then(a.asn.cmp(&b.asn))
    });
    digests
}

/// Sanity guard used by tests and callers: a digest body must never leak
/// path-like strings.
pub fn leaks_paths(digest_text: &str) -> bool {
    digest_text.lines().any(|l| l.contains("/") && (l.contains(".pst") || l.contains("shadow")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enumerator::{FileEntry, HostRecord, LoginOutcome};
    use ftp_proto::listing::Readability;
    use netsim::{AsKind, Ipv4Net};
    use std::net::Ipv4Addr;

    fn registry() -> AsRegistry {
        let mut reg = AsRegistry::new();
        reg.register(Asn(100), "Example ISP", AsKind::Isp);
        reg.announce(Asn(100), Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 24));
        reg.register(Asn(200), "Example Hosting", AsKind::Hosting);
        reg.announce(Asn(200), Ipv4Net::new(Ipv4Addr::new(10, 0, 1, 0), 24));
        reg.freeze();
        reg
    }

    fn host(ip: [u8; 4], files: &[&str], bounce: bool) -> HostRecord {
        let mut r = HostRecord::new(Ipv4Addr::from(ip));
        r.ftp_compliant = true;
        r.login = LoginOutcome::Anonymous;
        r.banner = Some("FTP server ready.".into());
        if bounce {
            r.port_accepts_third_party = Some(true);
        }
        r.files = files
            .iter()
            .map(|p| FileEntry {
                path: p.to_string(),
                is_dir: false,
                size: Some(1),
                readability: Readability::Readable,
                owner: None,
                other_writable: None,
            })
            .collect::<Vec<_>>()
            .into();
        r
    }

    #[test]
    fn digests_group_by_as_and_sort_by_volume() {
        let records = vec![
            host([10, 0, 0, 1], &["/a/archive.pst"], false),
            host([10, 0, 0, 2], &["/b/shadow"], true),
            host([10, 0, 1, 1], &[], true),
        ];
        let digests = build_digests(&records, &registry());
        assert_eq!(digests.len(), 2);
        assert_eq!(digests[0].asn, 100, "busier AS first");
        assert_eq!(digests[0].issues[&Issue::SensitiveExposure], 2);
        assert_eq!(digests[0].issues[&Issue::BounceVulnerable], 1);
        assert_eq!(digests[1].asn, 200);
    }

    #[test]
    fn clean_hosts_produce_no_digest() {
        let records = vec![host([10, 0, 0, 1], &["/pub/readme.txt"], false)];
        assert!(build_digests(&records, &registry()).is_empty());
    }

    #[test]
    fn rendered_digest_never_names_files() {
        let records = vec![host(
            [10, 0, 0, 1],
            &["/home/alice/secret-taxes.qdf", "/etc/shadow", "/mail/archive.pst"],
            false,
        )];
        let digests = build_digests(&records, &registry());
        let text = digests[0].render();
        assert!(text.contains("AS100"));
        assert!(text.contains("sensitive files"));
        assert!(!text.contains("alice"), "{text}");
        assert!(!text.contains("secret-taxes"), "{text}");
        assert!(!leaks_paths(&text), "{text}");
    }

    #[test]
    fn vulnerable_version_issue() {
        let mut r = host([10, 0, 0, 3], &[], false);
        r.banner = Some("ProFTPD 1.3.5 Server".into());
        assert!(issues_of(&r).contains(&Issue::VulnerableVersion));
    }
}
