//! Table I: the discovery funnel.

use enumerator::HostRecord;
use serde::{Deserialize, Serialize};

/// The four rows of Table I, as measured by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Funnel {
    /// Addresses probed (space minus blocklist).
    pub ips_scanned: u64,
    /// Hosts that answered SYN-ACK on TCP/21.
    pub open_port: u64,
    /// Hosts that sent an FTP-compliant banner.
    pub ftp_servers: u64,
    /// Hosts that allowed anonymous login.
    pub anonymous: u64,
    /// Hosts the enumerator gave up on (hostile or dead — the funnel's
    /// leakage row; zero on a fault-free population).
    pub gave_up: u64,
}

impl Funnel {
    /// Builds the funnel from scan counters and enumeration records.
    ///
    /// Stage counts must shrink monotonically down the funnel; a
    /// violation means the pipeline double-counted or dropped a stage,
    /// so it is surfaced as a structured [`obs::diag!`] warning (and a
    /// `debug_assert!` in debug builds) rather than silently rendered
    /// into Table I.
    pub fn from_results(ips_scanned: u64, open_port: u64, records: &[HostRecord]) -> Self {
        let ftp_servers = records.iter().filter(|r| r.ftp_compliant).count() as u64;
        let anonymous = records.iter().filter(|r| r.is_anonymous()).count() as u64;
        let gave_up = records.iter().filter(|r| r.gave_up.is_some()).count() as u64;
        let funnel = Funnel { ips_scanned, open_port, ftp_servers, anonymous, gave_up };
        let violations = funnel.invariant_violations();
        if !violations.is_empty() {
            obs::counter(obs::Counter::FunnelInvariantViolations, violations.len() as u64);
            for v in &violations {
                obs::diag!("warning: funnel invariant violated: {v} ({funnel:?})");
            }
            debug_assert!(
                violations.is_empty(),
                "funnel stages must be monotonic: {violations:?} in {funnel:?}"
            );
        }
        funnel
    }

    /// Checks the funnel's monotonicity invariants, returning a
    /// description of every stage pair that is out of order (empty on a
    /// well-formed funnel). Exposed so tests can probe hand-built
    /// funnels without tripping the `debug_assert!` in
    /// [`Funnel::from_results`].
    #[must_use]
    pub fn invariant_violations(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.open_port > self.ips_scanned {
            v.push("open_port > ips_scanned");
        }
        if self.ftp_servers > self.open_port {
            v.push("ftp_servers > open_port");
        }
        if self.anonymous > self.ftp_servers {
            v.push("anonymous > ftp_servers");
        }
        if self.gave_up > self.open_port {
            v.push("gave_up > open_port");
        }
        v
    }

    /// Give-up rate per open port — how much of the population actively
    /// resisted enumeration.
    pub fn gave_up_rate(&self) -> f64 {
        ratio(self.gave_up, self.open_port)
    }

    /// Port-21-open rate per scanned address.
    pub fn open_rate(&self) -> f64 {
        ratio(self.open_port, self.ips_scanned)
    }

    /// FTP-compliance rate per open port.
    pub fn ftp_rate(&self) -> f64 {
        ratio(self.ftp_servers, self.open_port)
    }

    /// Anonymous rate per FTP server — the paper's headline 8%.
    pub fn anonymous_rate(&self) -> f64 {
        ratio(self.anonymous, self.ftp_servers)
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn rates_computed() {
        let mut records = Vec::new();
        for i in 0..100u8 {
            let mut r = HostRecord::new(Ipv4Addr::new(1, 1, 1, i));
            r.ftp_compliant = true;
            if i < 8 {
                r.login = enumerator::LoginOutcome::Anonymous;
            }
            records.push(r);
        }
        // 20 non-FTP responders.
        for i in 0..20u8 {
            records.push(HostRecord::new(Ipv4Addr::new(1, 1, 2, i)));
        }
        let f = Funnel::from_results(10_000, 120, &records);
        assert_eq!(f.ftp_servers, 100);
        assert_eq!(f.anonymous, 8);
        assert!((f.open_rate() - 0.012).abs() < 1e-9);
        assert!((f.ftp_rate() - 100.0 / 120.0).abs() < 1e-9);
        assert!((f.anonymous_rate() - 0.08).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let f = Funnel::default();
        assert_eq!(f.open_rate(), 0.0);
        assert_eq!(f.ftp_rate(), 0.0);
        assert_eq!(f.anonymous_rate(), 0.0);
    }

    #[test]
    fn invariants_hold_on_well_formed_funnel() {
        let f = Funnel {
            ips_scanned: 1000,
            open_port: 100,
            ftp_servers: 80,
            anonymous: 8,
            gave_up: 20,
        };
        assert!(f.invariant_violations().is_empty());
        assert!(Funnel::default().invariant_violations().is_empty());
    }

    #[test]
    fn invariants_flag_non_monotonic_stages() {
        let f = Funnel {
            ips_scanned: 10,
            open_port: 100,
            ftp_servers: 80,
            anonymous: 90,
            gave_up: 200,
        };
        let v = f.invariant_violations();
        assert_eq!(
            v,
            vec!["open_port > ips_scanned", "anonymous > ftp_servers", "gave_up > open_port"]
        );
    }
}
