//! Enumerator configuration.

use crate::backoff::RetrySchedule;
use ftp_proto::HostPort;
use netsim::SimDuration;
use std::net::Ipv4Addr;

/// Directory-traversal strategy (DESIGN.md §5 ablation 2).
///
/// The paper's enumerator traverses breadth-first, which bounds the
/// depth bias when the request cap truncates a walk; depth-first spends
/// the whole budget down one subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraversalOrder {
    /// Breadth-first (the paper's choice).
    #[default]
    BreadthFirst,
    /// Depth-first (the ablation).
    DepthFirst,
}

/// Tunables for an enumeration run. Defaults mirror the paper's stated
/// methodology: 500-request cap, two requests per second, robots.txt
/// respected, abuse-contact password.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Source address for all enumerator connections.
    pub source_ip: Ipv4Addr,
    /// Hosts enumerated concurrently ("spread across widely dispersed
    /// hosts" in the paper; one source with bounded concurrency here).
    pub max_concurrent: usize,
    /// Maximum control-channel commands per host (paper: 500).
    pub request_cap: u32,
    /// Delay between consecutive commands to one host (paper: 2 req/s).
    pub request_gap: SimDuration,
    /// Abort a step when no reply arrives within this window.
    pub step_timeout: SimDuration,
    /// Give up on a host outright when its whole session exceeds this
    /// wall-clock bound — the backstop that makes a run over a hostile
    /// population finish no matter what individual hosts do.
    pub session_deadline: SimDuration,
    /// Backoff schedule for failed control-connection attempts.
    pub retry: RetrySchedule,
    /// Address we control for the `PORT`-validation probe; `None`
    /// disables the probe.
    pub bounce_collector: Option<HostPort>,
    /// User-agent for robots.txt group matching.
    pub user_agent: String,
    /// Anonymous-login password (the team's abuse contact, per RFC 1635).
    pub password: String,
    /// Honor robots.txt (ablation switch; the real study always did).
    pub respect_robots: bool,
    /// Strict RFC 959 reply interpretation (ablation: disables the
    /// hardened quirk tolerance and treats any unexpected reply as
    /// failure).
    pub strict_replies: bool,
    /// Maximum traversal depth.
    pub max_depth: usize,
    /// Attempt `AUTH TLS` certificate collection.
    pub collect_certs: bool,
    /// Traversal strategy under the request cap.
    pub traversal: TraversalOrder,
}

impl EnumConfig {
    /// Paper-faithful defaults from the given source address.
    pub fn new(source_ip: Ipv4Addr) -> Self {
        EnumConfig {
            source_ip,
            max_concurrent: 128,
            request_cap: 500,
            request_gap: SimDuration::from_millis(500),
            step_timeout: SimDuration::from_secs(30),
            session_deadline: SimDuration::from_secs(900),
            retry: RetrySchedule::default(),
            bounce_collector: None,
            user_agent: "ftp-enumerator".to_owned(),
            password: "abuse@scan-research.example.org".to_owned(),
            respect_robots: true,
            strict_replies: false,
            max_depth: 16,
            collect_certs: true,
            traversal: TraversalOrder::BreadthFirst,
        }
    }

    /// Builder: choose the traversal strategy.
    pub fn with_traversal(mut self, order: TraversalOrder) -> Self {
        self.traversal = order;
        self
    }

    /// Builder: enable the `PORT` bounce probe toward `collector`.
    pub fn with_bounce_probe(mut self, collector: HostPort) -> Self {
        self.bounce_collector = Some(collector);
        self
    }

    /// Builder: set the per-host request cap.
    pub fn with_request_cap(mut self, cap: u32) -> Self {
        self.request_cap = cap;
        self
    }

    /// Builder: set concurrency.
    pub fn with_concurrency(mut self, n: usize) -> Self {
        self.max_concurrent = n.max(1);
        self
    }

    /// Builder: set the inter-command gap (rate limit).
    pub fn with_request_gap(mut self, gap: SimDuration) -> Self {
        self.request_gap = gap;
        self
    }

    /// Builder: set the connect-retry schedule.
    pub fn with_retry(mut self, retry: RetrySchedule) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: set the per-session wall-clock deadline.
    pub fn with_session_deadline(mut self, deadline: SimDuration) -> Self {
        self.session_deadline = deadline;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EnumConfig::new(Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(c.request_cap, 500);
        assert_eq!(c.request_gap, SimDuration::from_millis(500)); // 2 req/s
        assert!(c.respect_robots);
        assert!(c.password.contains('@'), "RFC 1635: email as password");
        assert!(c.bounce_collector.is_none());
    }

    #[test]
    fn builders() {
        let hp = HostPort::new(Ipv4Addr::new(9, 9, 9, 9), 1025);
        let c = EnumConfig::new(Ipv4Addr::new(1, 1, 1, 1))
            .with_bounce_probe(hp)
            .with_request_cap(50)
            .with_concurrency(0);
        assert_eq!(c.bounce_collector, Some(hp));
        assert_eq!(c.request_cap, 50);
        assert_eq!(c.max_concurrent, 1, "clamped to at least one");
    }

    #[test]
    fn default_retry_budget_fits_inside_session_deadline() {
        // A host that times out on every connect must exhaust its retry
        // schedule well before the session deadline would fire, so the
        // GaveUp reason is attributed to the connect path, not the
        // backstop.
        let c = EnumConfig::new(Ipv4Addr::new(1, 1, 1, 1));
        let attempts = u64::from(c.retry.max_attempts());
        let worst =
            c.retry.worst_case_total() + c.step_timeout.saturating_mul(attempts);
        assert!(worst < c.session_deadline, "{worst:?} vs {:?}", c.session_deadline);
    }
}
