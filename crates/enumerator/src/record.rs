//! Per-host enumeration records: the study's raw dataset.

use ftp_proto::listing::Readability;
use ftp_proto::HostPort;
use serde::{Deserialize, Serialize};
use simtls::SimCertificate;
use std::net::Ipv4Addr;

/// Outcome of the anonymous-login attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoginOutcome {
    /// Login not attempted: the banner stated anonymous access is
    /// forbidden (the enumerator's ethics rule).
    SkippedBannerForbids,
    /// Attempted and rejected.
    Denied,
    /// Anonymous session established.
    Anonymous,
    /// The host never presented a valid FTP greeting.
    NotFtp,
    /// The connection failed or timed out before login finished.
    Aborted,
}

impl LoginOutcome {
    /// Stable snake_case tag for structured diagnostics and journals.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            LoginOutcome::SkippedBannerForbids => "skipped_banner_forbids",
            LoginOutcome::Denied => "denied",
            LoginOutcome::Anonymous => "anonymous",
            LoginOutcome::NotFtp => "not_ftp",
            LoginOutcome::Aborted => "aborted",
        }
    }
}

/// Why the enumerator unilaterally abandoned a session.
///
/// `None` on a [`HostRecord`] means the session ended on the
/// enumerator's terms (orderly QUIT, or the server closed on us —
/// see [`HostRecord::server_terminated`]). `Some` marks a partial
/// record: everything gathered before the give-up point is retained,
/// and the reason says which defense fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GaveUpReason {
    /// Every connection attempt failed or timed out, retries included.
    ConnectFailed,
    /// A command went unanswered past the per-step deadline.
    StepTimeout,
    /// The whole session exceeded its wall-clock deadline.
    SessionDeadline,
    /// The control channel produced data no reply parser understood.
    ControlGarbage,
    /// An unterminated control line exceeded the codec's line limit.
    OverlongLine,
}

impl GaveUpReason {
    /// Stable snake_case tag for structured diagnostics and traces.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            GaveUpReason::ConnectFailed => "connect_failed",
            GaveUpReason::StepTimeout => "step_timeout",
            GaveUpReason::SessionDeadline => "session_deadline",
            GaveUpReason::ControlGarbage => "control_garbage",
            GaveUpReason::OverlongLine => "overlong_line",
        }
    }
}

/// Per-session tallies of the hostile behavior the enumerator absorbed.
///
/// These are the operator-facing health counters the paper's team
/// watched while hardening their tool (§III); [`RunSummary`] aggregates
/// them across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultStats {
    /// Connection attempts beyond the first.
    pub connect_retries: u32,
    /// Steps abandoned because no reply arrived in time.
    pub step_timeouts: u32,
    /// Data-channel connections that failed or timed out.
    pub data_conn_failures: u32,
    /// Control lines rejected by the reply parser.
    pub garbage_lines: u32,
    /// Control lines that overran the codec's length limit.
    pub overlong_lines: u32,
}

impl FaultStats {
    /// True when the session saw no hostile behavior at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// What the enumerator learned from `robots.txt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RobotsInfo {
    /// The file existed and parsed.
    pub present: bool,
    /// The policy excluded the entire filesystem.
    pub denies_all: bool,
}

/// One file or directory observed during traversal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Full canonical path.
    pub path: String,
    /// True for directories.
    pub is_dir: bool,
    /// Size, when the listing exposed it.
    pub size: Option<u64>,
    /// The paper's three-way readability classification.
    pub readability: Readability,
    /// Owner column, when exposed (`ftp`, `root`, …).
    pub owner: Option<String>,
    /// All-users write bit, when permissions were exposed.
    pub other_writable: Option<bool>,
}

impl FileEntry {
    /// The file's name (final path component).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }

    /// Lower-cased extension without the dot, if any.
    pub fn extension(&self) -> Option<String> {
        let name = self.name();
        let dot = name.rfind('.')?;
        if dot == 0 || dot + 1 == name.len() {
            return None;
        }
        Some(name[dot + 1..].to_ascii_lowercase())
    }
}

/// A borrowed view of one [`FileTable`] row.
///
/// `Copy`, and every string accessor returns a slice tied to the
/// *table's* lifetime (`self` is taken by value), so callers can hold
/// names and extensions in borrowed seen-sets while iterating.
#[derive(Debug, Clone, Copy)]
pub struct FileEntryRef<'a> {
    /// Full canonical path.
    pub path: &'a str,
    /// True for directories.
    pub is_dir: bool,
    /// Size, when the listing exposed it.
    pub size: Option<u64>,
    /// The paper's three-way readability classification.
    pub readability: Readability,
    /// Owner column, when exposed (`ftp`, `root`, …).
    pub owner: Option<&'a str>,
    /// All-users write bit, when permissions were exposed.
    pub other_writable: Option<bool>,
    name: &'a str,
    ext: &'a str,
}

impl<'a> FileEntryRef<'a> {
    /// The file's name (final path component).
    pub fn name(self) -> &'a str {
        self.name
    }

    /// Lower-cased extension without the dot, if any — precomputed at
    /// insertion time, so this is a slice lookup, not an allocation.
    pub fn extension(self) -> Option<&'a str> {
        if self.ext.is_empty() {
            None
        } else {
            Some(self.ext)
        }
    }
}

/// Struct-of-arrays storage for a host's observed files.
///
/// The AoS form (`Vec<FileEntry>`) cost four-plus heap allocations per
/// row (path `String`, optional owner `String`, and a fresh lowercase
/// `String` per `extension()` call in every analysis pass). This table
/// stores all paths in one arena string with end offsets, interns the
/// handful of distinct owner names per host, and precomputes lowercase
/// extensions into a side arena — row access hands out [`FileEntryRef`]
/// slices and never allocates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileTable {
    /// Every path, concatenated; row `i` is `paths[path_end[i-1]..path_end[i]]`.
    paths: String,
    path_end: Vec<u32>,
    /// Byte offset into `paths` where row `i`'s final component begins.
    name_start: Vec<u32>,
    /// Lower-cased extensions, concatenated; zero-length slice = none.
    ext_buf: String,
    ext_end: Vec<u32>,
    is_dir: Vec<bool>,
    size: Vec<Option<u64>>,
    readability: Vec<Readability>,
    /// Index into `owners`, or `u32::MAX` for "owner column absent".
    owner_ix: Vec<u32>,
    owners: Vec<String>,
    other_writable: Vec<Option<bool>>,
}

impl FileTable {
    /// Number of rows (files and directories).
    pub fn len(&self) -> usize {
        self.path_end.len()
    }

    /// True when no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.path_end.is_empty()
    }

    /// Appends a row from its parts without materializing the joined
    /// path: `dir` + `/` + `name` is written straight into the arena.
    /// Canonical directories never end in `/` except the root itself.
    #[allow(clippy::too_many_arguments)]
    pub fn push_parts(
        &mut self,
        dir: &str,
        name: &str,
        is_dir: bool,
        size: Option<u64>,
        readability: Readability,
        owner: Option<&str>,
        other_writable: Option<bool>,
    ) {
        if dir != "/" {
            self.paths.push_str(dir);
        }
        self.paths.push('/');
        let name_start = self.paths.len() as u32;
        self.paths.push_str(name);
        self.finish_row(name_start, is_dir, size, readability, owner, other_writable);
    }

    /// Appends an owned [`FileEntry`] (construction and test paths; the
    /// enumerator's hot path uses [`FileTable::push_parts`]).
    pub fn push(&mut self, e: FileEntry) {
        let name_rel = e.path.rfind('/').map_or(0, |i| i + 1);
        self.paths.push_str(&e.path);
        let name_start = (self.paths.len() - (e.path.len() - name_rel)) as u32;
        self.finish_row(
            name_start,
            e.is_dir,
            e.size,
            e.readability,
            e.owner.as_deref(),
            e.other_writable,
        );
    }

    fn finish_row(
        &mut self,
        name_start: u32,
        is_dir: bool,
        size: Option<u64>,
        readability: Readability,
        owner: Option<&str>,
        other_writable: Option<bool>,
    ) {
        self.path_end.push(self.paths.len() as u32);
        self.name_start.push(name_start);
        let name = &self.paths[name_start as usize..];
        if let Some(dot) = name.rfind('.') {
            if dot != 0 && dot + 1 != name.len() {
                self.ext_buf.extend(name[dot + 1..].chars().map(|c| c.to_ascii_lowercase()));
            }
        }
        self.ext_end.push(self.ext_buf.len() as u32);
        self.is_dir.push(is_dir);
        self.size.push(size);
        self.readability.push(readability);
        let owner_ix = match owner {
            None => u32::MAX,
            // Hosts expose a handful of distinct owners at most, so a
            // linear probe beats a hash map here.
            Some(o) => match self.owners.iter().position(|have| have == o) {
                Some(i) => i as u32,
                None => {
                    self.owners.push(o.to_owned());
                    (self.owners.len() - 1) as u32
                }
            },
        };
        self.owner_ix.push(owner_ix);
        self.other_writable.push(other_writable);
    }

    /// The row at `ix`. Panics when out of bounds, like slice indexing.
    pub fn get(&self, ix: usize) -> FileEntryRef<'_> {
        let path_start = if ix == 0 { 0 } else { self.path_end[ix - 1] as usize };
        let path_end = self.path_end[ix] as usize;
        let ext_start = if ix == 0 { 0 } else { self.ext_end[ix - 1] as usize };
        FileEntryRef {
            path: &self.paths[path_start..path_end],
            name: &self.paths[self.name_start[ix] as usize..path_end],
            ext: &self.ext_buf[ext_start..self.ext_end[ix] as usize],
            is_dir: self.is_dir[ix],
            size: self.size[ix],
            readability: self.readability[ix],
            owner: match self.owner_ix[ix] {
                u32::MAX => None,
                i => Some(self.owners[i as usize].as_str()),
            },
            other_writable: self.other_writable[ix],
        }
    }

    /// Iterates rows as borrowed [`FileEntryRef`] views.
    pub fn iter(&self) -> FileTableIter<'_> {
        FileTableIter { table: self, ix: 0 }
    }

    /// The most recently pushed path, if any — lets the traversal loop
    /// build its visited/queue keys without re-joining the path.
    pub fn last_path(&self) -> Option<&str> {
        let ix = self.len().checked_sub(1)?;
        let start = if ix == 0 { 0 } else { self.path_end[ix - 1] as usize };
        Some(&self.paths[start..self.path_end[ix] as usize])
    }
}

/// Borrowing iterator over [`FileTable`] rows.
#[derive(Debug, Clone)]
pub struct FileTableIter<'a> {
    table: &'a FileTable,
    ix: usize,
}

impl<'a> Iterator for FileTableIter<'a> {
    type Item = FileEntryRef<'a>;

    fn next(&mut self) -> Option<FileEntryRef<'a>> {
        if self.ix >= self.table.len() {
            return None;
        }
        let row = self.table.get(self.ix);
        self.ix += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.table.len() - self.ix;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FileTableIter<'_> {}

impl<'a> IntoIterator for &'a FileTable {
    type Item = FileEntryRef<'a>;
    type IntoIter = FileTableIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl From<Vec<FileEntry>> for FileTable {
    fn from(entries: Vec<FileEntry>) -> Self {
        let mut t = FileTable::default();
        for e in entries {
            t.push(e);
        }
        t
    }
}

/// FTPS observation for one host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FtpsObservation {
    /// `AUTH TLS`/`AUTH SSL` accepted.
    pub supported: bool,
    /// Plaintext login was refused pending TLS (FTPS required).
    pub required_before_login: bool,
    /// The certificate captured from the simulated handshake.
    pub cert: Option<SimCertificate>,
}

/// Everything the enumerator learned about one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostRecord {
    /// The host address.
    pub ip: Ipv4Addr,
    /// Raw banner text (`220` body), if any arrived.
    pub banner: Option<String>,
    /// The host sent a syntactically valid FTP greeting.
    pub ftp_compliant: bool,
    /// Login outcome.
    pub login: LoginOutcome,
    /// robots.txt findings (only meaningful after login).
    pub robots: RobotsInfo,
    /// Every file and directory observed, in columnar form.
    pub files: FileTable,
    /// Traversal stopped at the request cap (the paper's 26.7 K
    /// ">500 requests" population).
    pub truncated: bool,
    /// The server closed the control channel mid-session.
    pub server_terminated: bool,
    /// Control-channel commands issued.
    pub requests_used: u32,
    /// `SYST` reply text.
    pub syst: Option<String>,
    /// `HELP` reply text (joined lines).
    pub help: Option<String>,
    /// `FEAT` feature lines.
    pub feat: Vec<String>,
    /// `SITE` reply text.
    pub site: Option<String>,
    /// FTPS observation.
    pub ftps: FtpsObservation,
    /// Host-port tuple from the first `227` reply (NAT detection: a
    /// private or mismatching address reveals NAT deployment).
    pub pasv_addr: Option<HostPort>,
    /// `PORT` probe verdict: `Some(true)` = accepted a third-party
    /// address (bounce-vulnerable), `Some(false)` = rejected it,
    /// `None` = not probed.
    pub port_accepts_third_party: Option<bool>,
    /// Listing lines no parser understood.
    pub unparsed_lines: u64,
    /// Set when the enumerator abandoned the session; the record is
    /// partial but everything gathered before that point is kept.
    pub gave_up: Option<GaveUpReason>,
    /// Hostile-behavior tallies for this session.
    pub faults: FaultStats,
}

impl HostRecord {
    /// A fresh record for `ip`.
    pub fn new(ip: Ipv4Addr) -> Self {
        HostRecord {
            ip,
            banner: None,
            ftp_compliant: false,
            login: LoginOutcome::Aborted,
            robots: RobotsInfo::default(),
            files: FileTable::default(),
            truncated: false,
            server_terminated: false,
            requests_used: 0,
            syst: None,
            help: None,
            feat: Vec::new(),
            site: None,
            ftps: FtpsObservation::default(),
            pasv_addr: None,
            port_accepts_third_party: None,
            unparsed_lines: 0,
            gave_up: None,
            faults: FaultStats::default(),
        }
    }

    /// True when the anonymous session succeeded.
    pub fn is_anonymous(&self) -> bool {
        self.login == LoginOutcome::Anonymous
    }

    /// Count of non-directory entries.
    pub fn file_count(&self) -> usize {
        self.files.iter().filter(|f| !f.is_dir).count()
    }

    /// True when any (non-directory) data was observed — the paper's
    /// "exposed some form of data" 24% statistic.
    pub fn exposes_data(&self) -> bool {
        self.files.iter().any(|f| !f.is_dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, is_dir: bool) -> FileEntry {
        FileEntry {
            path: path.to_owned(),
            is_dir,
            size: None,
            readability: Readability::Unknown,
            owner: None,
            other_writable: None,
        }
    }

    #[test]
    fn name_and_extension() {
        let e = entry("/pub/photos/DSC_0001.JPG", false);
        assert_eq!(e.name(), "DSC_0001.JPG");
        assert_eq!(e.extension().as_deref(), Some("jpg"));
        assert_eq!(entry("/x/noext", false).extension(), None);
        assert_eq!(entry("/x/.hidden", false).extension(), None);
        assert_eq!(entry("/x/trailing.", false).extension(), None);
        assert_eq!(entry("/a/b.tar.gz", false).extension().as_deref(), Some("gz"));
    }

    #[test]
    fn table_roundtrips_entries() {
        let entries = vec![
            FileEntry {
                path: "/pub/photos/DSC_0001.JPG".to_owned(),
                is_dir: false,
                size: Some(120),
                readability: Readability::Readable,
                owner: Some("ftp".to_owned()),
                other_writable: Some(false),
            },
            entry("/pub", true),
            FileEntry {
                path: "/etc/shadow".to_owned(),
                is_dir: false,
                size: None,
                readability: Readability::NonReadable,
                owner: Some("root".to_owned()),
                other_writable: None,
            },
            entry("/root-file", false),
        ];
        let t = FileTable::from(entries.clone());
        assert_eq!(t.len(), entries.len());
        for (row, e) in t.iter().zip(&entries) {
            assert_eq!(row.path, e.path);
            assert_eq!(row.name(), e.name());
            assert_eq!(row.extension(), e.extension().as_deref());
            assert_eq!(row.is_dir, e.is_dir);
            assert_eq!(row.size, e.size);
            assert_eq!(row.readability, e.readability);
            assert_eq!(row.owner, e.owner.as_deref());
            assert_eq!(row.other_writable, e.other_writable);
        }
        assert_eq!(t.last_path(), Some("/root-file"));
    }

    #[test]
    fn push_parts_matches_push() {
        let mut by_parts = FileTable::default();
        by_parts.push_parts("/", "readme.TXT", false, Some(3), Readability::Readable, None, None);
        by_parts.push_parts("/pub", "inner", true, None, Readability::Unknown, Some("ftp"), None);
        by_parts.push_parts("/pub/inner", ".hidden", false, None, Readability::Unknown, None, None);
        let mut by_push = FileTable::default();
        by_push.push(entry("/readme.TXT", false));
        by_push.push(entry("/pub/inner", true));
        by_push.push(entry("/pub/inner/.hidden", false));
        let parts: Vec<(String, String, Option<String>)> = by_parts
            .iter()
            .map(|r| {
                (r.path.to_owned(), r.name().to_owned(), r.extension().map(str::to_owned))
            })
            .collect();
        let pushed: Vec<(String, String, Option<String>)> = by_push
            .iter()
            .map(|r| {
                (r.path.to_owned(), r.name().to_owned(), r.extension().map(str::to_owned))
            })
            .collect();
        assert_eq!(parts, pushed);
        assert_eq!(parts[0], ("/readme.TXT".to_owned(), "readme.TXT".to_owned(), Some("txt".to_owned())));
        assert_eq!(parts[2].2, None, ".hidden has no extension");
    }

    #[test]
    fn exposes_data_ignores_directories() {
        let mut r = HostRecord::new(Ipv4Addr::new(1, 2, 3, 4));
        assert!(!r.exposes_data());
        r.files.push(entry("/pub", true));
        assert!(!r.exposes_data());
        r.files.push(entry("/pub/file.txt", false));
        assert!(r.exposes_data());
        assert_eq!(r.file_count(), 1);
    }

    #[test]
    fn fresh_record_defaults() {
        let r = HostRecord::new(Ipv4Addr::new(1, 1, 1, 1));
        assert!(!r.ftp_compliant);
        assert!(!r.is_anonymous());
        assert_eq!(r.login, LoginOutcome::Aborted);
        assert_eq!(r.port_accepts_third_party, None);
    }
}

/// Operational summary of an enumeration run — the tool telemetry an
/// operator watches (the paper's team iterated on exactly these signals
/// while hardening the enumerator, §III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Hosts contacted.
    pub hosts: u64,
    /// Hosts that presented a valid FTP greeting.
    pub ftp: u64,
    /// Anonymous sessions established.
    pub anonymous: u64,
    /// Sessions the server terminated early.
    pub server_terminated: u64,
    /// Sessions that hit the request cap.
    pub truncated: u64,
    /// Sessions aborted by timeout/connect failure.
    pub aborted: u64,
    /// Total control-channel commands issued.
    pub total_requests: u64,
    /// Total file/directory entries observed.
    pub total_entries: u64,
    /// Listing lines no parser understood.
    pub unparsed_lines: u64,
    /// Sessions the enumerator abandoned (any [`GaveUpReason`]).
    pub gave_up: u64,
    /// Connection attempts beyond the first, summed over hosts.
    pub connect_retries: u64,
    /// Steps abandoned on the per-step deadline, summed over hosts.
    pub step_timeouts: u64,
    /// Data-channel connect failures, summed over hosts.
    pub data_conn_failures: u64,
    /// Control lines rejected as garbage (parser or codec), summed.
    pub garbage_lines: u64,
}

impl RunSummary {
    /// Aggregates a record set.
    pub fn from_records(records: &[HostRecord]) -> Self {
        let mut s = RunSummary::default();
        for r in records {
            s.fold(r);
        }
        s
    }

    /// Folds one record into the summary. Every field is a plain sum,
    /// so fold order is irrelevant and [`RunSummary::absorb`]-merging
    /// per-batch summaries equals one summary over all records — the
    /// law the streaming study runner relies on.
    pub fn fold(&mut self, r: &HostRecord) {
        self.hosts += 1;
        if r.ftp_compliant {
            self.ftp += 1;
        }
        if r.is_anonymous() {
            self.anonymous += 1;
        }
        if r.server_terminated {
            self.server_terminated += 1;
        }
        if r.truncated {
            self.truncated += 1;
        }
        if r.login == LoginOutcome::Aborted {
            self.aborted += 1;
        }
        self.total_requests += u64::from(r.requests_used);
        self.total_entries += r.files.len() as u64;
        self.unparsed_lines += r.unparsed_lines;
        if r.gave_up.is_some() {
            self.gave_up += 1;
        }
        self.connect_retries += u64::from(r.faults.connect_retries);
        self.step_timeouts += u64::from(r.faults.step_timeouts);
        self.data_conn_failures += u64::from(r.faults.data_conn_failures);
        self.garbage_lines +=
            u64::from(r.faults.garbage_lines) + u64::from(r.faults.overlong_lines);
    }

    /// Adds another summary field-by-field (commutative, associative).
    pub fn absorb(&mut self, other: &RunSummary) {
        self.hosts += other.hosts;
        self.ftp += other.ftp;
        self.anonymous += other.anonymous;
        self.server_terminated += other.server_terminated;
        self.truncated += other.truncated;
        self.aborted += other.aborted;
        self.total_requests += other.total_requests;
        self.total_entries += other.total_entries;
        self.unparsed_lines += other.unparsed_lines;
        self.gave_up += other.gave_up;
        self.connect_retries += other.connect_retries;
        self.step_timeouts += other.step_timeouts;
        self.data_conn_failures += other.data_conn_failures;
        self.garbage_lines += other.garbage_lines;
    }

    /// Mean commands per contacted host.
    pub fn mean_requests(&self) -> f64 {
        if self.hosts == 0 {
            0.0
        } else {
            self.total_requests as f64 / self.hosts as f64
        }
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn aggregates_records() {
        let mut a = HostRecord::new(Ipv4Addr::new(1, 1, 1, 1));
        a.ftp_compliant = true;
        a.login = LoginOutcome::Anonymous;
        a.requests_used = 10;
        a.truncated = true;
        let mut b = HostRecord::new(Ipv4Addr::new(1, 1, 1, 2));
        b.login = LoginOutcome::Aborted;
        b.requests_used = 2;
        let s = RunSummary::from_records(&[a, b]);
        assert_eq!(s.hosts, 2);
        assert_eq!(s.ftp, 1);
        assert_eq!(s.anonymous, 1);
        assert_eq!(s.truncated, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.total_requests, 12);
        assert!((s.mean_requests() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = RunSummary::from_records(&[]);
        assert_eq!(s.hosts, 0);
        assert_eq!(s.mean_requests(), 0.0);
    }

    #[test]
    fn absorb_of_splits_equals_whole() {
        let mut a = HostRecord::new(Ipv4Addr::new(1, 1, 1, 1));
        a.ftp_compliant = true;
        a.requests_used = 10;
        a.faults.garbage_lines = 3;
        let mut b = HostRecord::new(Ipv4Addr::new(1, 1, 1, 2));
        b.requests_used = 2;
        b.unparsed_lines = 5;
        let mut c = HostRecord::new(Ipv4Addr::new(1, 1, 1, 3));
        c.truncated = true;
        let whole = RunSummary::from_records(&[a.clone(), b.clone(), c.clone()]);
        // Any batch split, any merge order.
        let mut merged = RunSummary::from_records(&[c]);
        merged.absorb(&RunSummary::from_records(&[a, b]));
        assert_eq!(merged, whole);
    }
}
