//! Per-host enumeration records: the study's raw dataset.

use ftp_proto::listing::Readability;
use ftp_proto::HostPort;
use serde::{Deserialize, Serialize};
use simtls::SimCertificate;
use std::net::Ipv4Addr;

/// Outcome of the anonymous-login attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoginOutcome {
    /// Login not attempted: the banner stated anonymous access is
    /// forbidden (the enumerator's ethics rule).
    SkippedBannerForbids,
    /// Attempted and rejected.
    Denied,
    /// Anonymous session established.
    Anonymous,
    /// The host never presented a valid FTP greeting.
    NotFtp,
    /// The connection failed or timed out before login finished.
    Aborted,
}

/// Why the enumerator unilaterally abandoned a session.
///
/// `None` on a [`HostRecord`] means the session ended on the
/// enumerator's terms (orderly QUIT, or the server closed on us —
/// see [`HostRecord::server_terminated`]). `Some` marks a partial
/// record: everything gathered before the give-up point is retained,
/// and the reason says which defense fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GaveUpReason {
    /// Every connection attempt failed or timed out, retries included.
    ConnectFailed,
    /// A command went unanswered past the per-step deadline.
    StepTimeout,
    /// The whole session exceeded its wall-clock deadline.
    SessionDeadline,
    /// The control channel produced data no reply parser understood.
    ControlGarbage,
    /// An unterminated control line exceeded the codec's line limit.
    OverlongLine,
}

impl GaveUpReason {
    /// Stable snake_case tag for structured diagnostics and traces.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            GaveUpReason::ConnectFailed => "connect_failed",
            GaveUpReason::StepTimeout => "step_timeout",
            GaveUpReason::SessionDeadline => "session_deadline",
            GaveUpReason::ControlGarbage => "control_garbage",
            GaveUpReason::OverlongLine => "overlong_line",
        }
    }
}

/// Per-session tallies of the hostile behavior the enumerator absorbed.
///
/// These are the operator-facing health counters the paper's team
/// watched while hardening their tool (§III); [`RunSummary`] aggregates
/// them across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultStats {
    /// Connection attempts beyond the first.
    pub connect_retries: u32,
    /// Steps abandoned because no reply arrived in time.
    pub step_timeouts: u32,
    /// Data-channel connections that failed or timed out.
    pub data_conn_failures: u32,
    /// Control lines rejected by the reply parser.
    pub garbage_lines: u32,
    /// Control lines that overran the codec's length limit.
    pub overlong_lines: u32,
}

impl FaultStats {
    /// True when the session saw no hostile behavior at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// What the enumerator learned from `robots.txt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RobotsInfo {
    /// The file existed and parsed.
    pub present: bool,
    /// The policy excluded the entire filesystem.
    pub denies_all: bool,
}

/// One file or directory observed during traversal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    /// Full canonical path.
    pub path: String,
    /// True for directories.
    pub is_dir: bool,
    /// Size, when the listing exposed it.
    pub size: Option<u64>,
    /// The paper's three-way readability classification.
    pub readability: Readability,
    /// Owner column, when exposed (`ftp`, `root`, …).
    pub owner: Option<String>,
    /// All-users write bit, when permissions were exposed.
    pub other_writable: Option<bool>,
}

impl FileEntry {
    /// The file's name (final path component).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }

    /// Lower-cased extension without the dot, if any.
    pub fn extension(&self) -> Option<String> {
        let name = self.name();
        let dot = name.rfind('.')?;
        if dot == 0 || dot + 1 == name.len() {
            return None;
        }
        Some(name[dot + 1..].to_ascii_lowercase())
    }
}

/// FTPS observation for one host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FtpsObservation {
    /// `AUTH TLS`/`AUTH SSL` accepted.
    pub supported: bool,
    /// Plaintext login was refused pending TLS (FTPS required).
    pub required_before_login: bool,
    /// The certificate captured from the simulated handshake.
    pub cert: Option<SimCertificate>,
}

/// Everything the enumerator learned about one host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostRecord {
    /// The host address.
    pub ip: Ipv4Addr,
    /// Raw banner text (`220` body), if any arrived.
    pub banner: Option<String>,
    /// The host sent a syntactically valid FTP greeting.
    pub ftp_compliant: bool,
    /// Login outcome.
    pub login: LoginOutcome,
    /// robots.txt findings (only meaningful after login).
    pub robots: RobotsInfo,
    /// Every file and directory observed.
    pub files: Vec<FileEntry>,
    /// Traversal stopped at the request cap (the paper's 26.7 K
    /// ">500 requests" population).
    pub truncated: bool,
    /// The server closed the control channel mid-session.
    pub server_terminated: bool,
    /// Control-channel commands issued.
    pub requests_used: u32,
    /// `SYST` reply text.
    pub syst: Option<String>,
    /// `HELP` reply text (joined lines).
    pub help: Option<String>,
    /// `FEAT` feature lines.
    pub feat: Vec<String>,
    /// `SITE` reply text.
    pub site: Option<String>,
    /// FTPS observation.
    pub ftps: FtpsObservation,
    /// Host-port tuple from the first `227` reply (NAT detection: a
    /// private or mismatching address reveals NAT deployment).
    pub pasv_addr: Option<HostPort>,
    /// `PORT` probe verdict: `Some(true)` = accepted a third-party
    /// address (bounce-vulnerable), `Some(false)` = rejected it,
    /// `None` = not probed.
    pub port_accepts_third_party: Option<bool>,
    /// Listing lines no parser understood.
    pub unparsed_lines: u64,
    /// Set when the enumerator abandoned the session; the record is
    /// partial but everything gathered before that point is kept.
    pub gave_up: Option<GaveUpReason>,
    /// Hostile-behavior tallies for this session.
    pub faults: FaultStats,
}

impl HostRecord {
    /// A fresh record for `ip`.
    pub fn new(ip: Ipv4Addr) -> Self {
        HostRecord {
            ip,
            banner: None,
            ftp_compliant: false,
            login: LoginOutcome::Aborted,
            robots: RobotsInfo::default(),
            files: Vec::new(),
            truncated: false,
            server_terminated: false,
            requests_used: 0,
            syst: None,
            help: None,
            feat: Vec::new(),
            site: None,
            ftps: FtpsObservation::default(),
            pasv_addr: None,
            port_accepts_third_party: None,
            unparsed_lines: 0,
            gave_up: None,
            faults: FaultStats::default(),
        }
    }

    /// True when the anonymous session succeeded.
    pub fn is_anonymous(&self) -> bool {
        self.login == LoginOutcome::Anonymous
    }

    /// Count of non-directory entries.
    pub fn file_count(&self) -> usize {
        self.files.iter().filter(|f| !f.is_dir).count()
    }

    /// True when any (non-directory) data was observed — the paper's
    /// "exposed some form of data" 24% statistic.
    pub fn exposes_data(&self) -> bool {
        self.files.iter().any(|f| !f.is_dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(path: &str, is_dir: bool) -> FileEntry {
        FileEntry {
            path: path.to_owned(),
            is_dir,
            size: None,
            readability: Readability::Unknown,
            owner: None,
            other_writable: None,
        }
    }

    #[test]
    fn name_and_extension() {
        let e = entry("/pub/photos/DSC_0001.JPG", false);
        assert_eq!(e.name(), "DSC_0001.JPG");
        assert_eq!(e.extension().as_deref(), Some("jpg"));
        assert_eq!(entry("/x/noext", false).extension(), None);
        assert_eq!(entry("/x/.hidden", false).extension(), None);
        assert_eq!(entry("/x/trailing.", false).extension(), None);
        assert_eq!(entry("/a/b.tar.gz", false).extension().as_deref(), Some("gz"));
    }

    #[test]
    fn exposes_data_ignores_directories() {
        let mut r = HostRecord::new(Ipv4Addr::new(1, 2, 3, 4));
        assert!(!r.exposes_data());
        r.files.push(entry("/pub", true));
        assert!(!r.exposes_data());
        r.files.push(entry("/pub/file.txt", false));
        assert!(r.exposes_data());
        assert_eq!(r.file_count(), 1);
    }

    #[test]
    fn fresh_record_defaults() {
        let r = HostRecord::new(Ipv4Addr::new(1, 1, 1, 1));
        assert!(!r.ftp_compliant);
        assert!(!r.is_anonymous());
        assert_eq!(r.login, LoginOutcome::Aborted);
        assert_eq!(r.port_accepts_third_party, None);
    }
}

/// Operational summary of an enumeration run — the tool telemetry an
/// operator watches (the paper's team iterated on exactly these signals
/// while hardening the enumerator, §III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Hosts contacted.
    pub hosts: u64,
    /// Hosts that presented a valid FTP greeting.
    pub ftp: u64,
    /// Anonymous sessions established.
    pub anonymous: u64,
    /// Sessions the server terminated early.
    pub server_terminated: u64,
    /// Sessions that hit the request cap.
    pub truncated: u64,
    /// Sessions aborted by timeout/connect failure.
    pub aborted: u64,
    /// Total control-channel commands issued.
    pub total_requests: u64,
    /// Total file/directory entries observed.
    pub total_entries: u64,
    /// Listing lines no parser understood.
    pub unparsed_lines: u64,
    /// Sessions the enumerator abandoned (any [`GaveUpReason`]).
    pub gave_up: u64,
    /// Connection attempts beyond the first, summed over hosts.
    pub connect_retries: u64,
    /// Steps abandoned on the per-step deadline, summed over hosts.
    pub step_timeouts: u64,
    /// Data-channel connect failures, summed over hosts.
    pub data_conn_failures: u64,
    /// Control lines rejected as garbage (parser or codec), summed.
    pub garbage_lines: u64,
}

impl RunSummary {
    /// Aggregates a record set.
    pub fn from_records(records: &[HostRecord]) -> Self {
        let mut s = RunSummary::default();
        for r in records {
            s.fold(r);
        }
        s
    }

    /// Folds one record into the summary. Every field is a plain sum,
    /// so fold order is irrelevant and [`RunSummary::absorb`]-merging
    /// per-batch summaries equals one summary over all records — the
    /// law the streaming study runner relies on.
    pub fn fold(&mut self, r: &HostRecord) {
        self.hosts += 1;
        if r.ftp_compliant {
            self.ftp += 1;
        }
        if r.is_anonymous() {
            self.anonymous += 1;
        }
        if r.server_terminated {
            self.server_terminated += 1;
        }
        if r.truncated {
            self.truncated += 1;
        }
        if r.login == LoginOutcome::Aborted {
            self.aborted += 1;
        }
        self.total_requests += u64::from(r.requests_used);
        self.total_entries += r.files.len() as u64;
        self.unparsed_lines += r.unparsed_lines;
        if r.gave_up.is_some() {
            self.gave_up += 1;
        }
        self.connect_retries += u64::from(r.faults.connect_retries);
        self.step_timeouts += u64::from(r.faults.step_timeouts);
        self.data_conn_failures += u64::from(r.faults.data_conn_failures);
        self.garbage_lines +=
            u64::from(r.faults.garbage_lines) + u64::from(r.faults.overlong_lines);
    }

    /// Adds another summary field-by-field (commutative, associative).
    pub fn absorb(&mut self, other: &RunSummary) {
        self.hosts += other.hosts;
        self.ftp += other.ftp;
        self.anonymous += other.anonymous;
        self.server_terminated += other.server_terminated;
        self.truncated += other.truncated;
        self.aborted += other.aborted;
        self.total_requests += other.total_requests;
        self.total_entries += other.total_entries;
        self.unparsed_lines += other.unparsed_lines;
        self.gave_up += other.gave_up;
        self.connect_retries += other.connect_retries;
        self.step_timeouts += other.step_timeouts;
        self.data_conn_failures += other.data_conn_failures;
        self.garbage_lines += other.garbage_lines;
    }

    /// Mean commands per contacted host.
    pub fn mean_requests(&self) -> f64 {
        if self.hosts == 0 {
            0.0
        } else {
            self.total_requests as f64 / self.hosts as f64
        }
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn aggregates_records() {
        let mut a = HostRecord::new(Ipv4Addr::new(1, 1, 1, 1));
        a.ftp_compliant = true;
        a.login = LoginOutcome::Anonymous;
        a.requests_used = 10;
        a.truncated = true;
        let mut b = HostRecord::new(Ipv4Addr::new(1, 1, 1, 2));
        b.login = LoginOutcome::Aborted;
        b.requests_used = 2;
        let s = RunSummary::from_records(&[a, b]);
        assert_eq!(s.hosts, 2);
        assert_eq!(s.ftp, 1);
        assert_eq!(s.anonymous, 1);
        assert_eq!(s.truncated, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.total_requests, 12);
        assert!((s.mean_requests() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = RunSummary::from_records(&[]);
        assert_eq!(s.hosts, 0);
        assert_eq!(s.mean_requests(), 0.0);
    }

    #[test]
    fn absorb_of_splits_equals_whole() {
        let mut a = HostRecord::new(Ipv4Addr::new(1, 1, 1, 1));
        a.ftp_compliant = true;
        a.requests_used = 10;
        a.faults.garbage_lines = 3;
        let mut b = HostRecord::new(Ipv4Addr::new(1, 1, 1, 2));
        b.requests_used = 2;
        b.unparsed_lines = 5;
        let mut c = HostRecord::new(Ipv4Addr::new(1, 1, 1, 3));
        c.truncated = true;
        let whole = RunSummary::from_records(&[a.clone(), b.clone(), c.clone()]);
        // Any batch split, any merge order.
        let mut merged = RunSummary::from_records(&[c]);
        merged.absorb(&RunSummary::from_records(&[a, b]));
        assert_eq!(merged, whole);
    }
}
