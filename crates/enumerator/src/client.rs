//! The enumeration engine: concurrent, quirk-tolerant FTP sessions.
//!
//! One [`Enumerator`] endpoint drives up to `max_concurrent` host
//! sessions at once, each a small per-phase state machine advanced by
//! network events. Every command is paced by the configured request gap
//! (the paper's two-requests-per-second limit) and guarded by a step
//! timeout; a server that hangs up mid-session is recorded as having
//! refused service and is never contacted again.
//!
//! Sessions are hardened against hostile hosts (DESIGN.md "Fault
//! model"): failed connects retry on a bounded exponential backoff, a
//! per-session wall-clock deadline backstops every other defense, and
//! each give-up path records a [`GaveUpReason`] plus fault counters on
//! the partial record instead of panicking or hanging.

use crate::config::EnumConfig;
use crate::record::{GaveUpReason, HostRecord, LoginOutcome};
use ftp_proto::listing::{self, ListingFormat};
use ftp_proto::reply::ReplyParser;
use ftp_proto::{Banner, HostPort, LineCodec, Reply, Robots};
use netsim::{ConnId, ConnectError, Ctx, Endpoint};
use simtls::SimCertificate;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Shared handle to the accumulated records.
pub type EnumResults = Rc<RefCell<Vec<HostRecord>>>;

/// Commands reserved after traversal for the wrap-up phases
/// (SYST/HELP/FEAT/SITE/PORT/LIST/AUTH/QUIT).
const RESERVED_REQUESTS: u32 = 8;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Connecting,
    Banner,
    User,
    Pass,
    RobotsPasv,
    RobotsRetr,
    // Directories are `Rc<str>` so the per-reply `phase.clone()` on the
    // traversal hot path bumps a refcount instead of copying the path.
    TravPasv { dir: Rc<str>, depth: usize },
    TravList { dir: Rc<str>, depth: usize },
    Syst,
    Help,
    Feat,
    Site,
    PortProbe,
    PortList,
    AuthTls,
    TlsHello,
    Quit,
    Done,
}

const KIND_SEND: u64 = 0;
const KIND_TIMEOUT: u64 = 1;
const KIND_CONTROL: u64 = 2;
const KIND_DATA: u64 = 3;
const KIND_RETRY: u64 = 4;
const KIND_DEADLINE: u64 = 5;

fn token(slot: usize, gen: u32, kind: u64) -> u64 {
    ((slot as u64) << 32) | ((gen as u64 & 0xff_ffff) << 8) | kind
}

fn untoken(t: u64) -> (usize, u32, u64) {
    (((t >> 32) & 0xffff_ffff) as usize, ((t >> 8) & 0xff_ffff) as u32, t & 0xff)
}

#[derive(Debug)]
struct Session {
    ip: Ipv4Addr,
    gen: u32,
    /// The generation at session start; the session-deadline timer is
    /// validated against this (unlike step timers, it must survive the
    /// constant generation bumps of a live session).
    start_gen: u32,
    record: HostRecord,
    control: Option<ConnId>,
    codec: LineCodec,
    parser: ReplyParser,
    phase: Phase,
    pending: Option<(Cow<'static, str>, Phase)>,
    data_conn: Option<ConnId>,
    data_buf: Vec<u8>,
    data_closed: bool,
    awaiting_data_connect: bool,
    got_final_reply: bool,
    last_331_text: String,
    robots: Robots,
    queue: VecDeque<(Rc<str>, usize)>,
    visited: HashSet<Rc<str>>,
    listing_hint: ListingFormat,
    /// Sim time (µs) when the session's first connect was issued; only
    /// read by the observability layer for the session-latency histogram.
    started_us: u64,
}

impl Session {
    fn new(ip: Ipv4Addr) -> Self {
        Session {
            ip,
            gen: 0,
            start_gen: 0,
            record: HostRecord::new(ip),
            control: None,
            codec: LineCodec::new(),
            parser: ReplyParser::default(),
            phase: Phase::Connecting,
            pending: None,
            data_conn: None,
            data_buf: Vec::new(),
            data_closed: false,
            awaiting_data_connect: false,
            got_final_reply: false,
            last_331_text: String::new(),
            robots: Robots::allow_all(),
            queue: VecDeque::new(),
            visited: HashSet::new(),
            listing_hint: ListingFormat::Unix,
            started_us: 0,
        }
    }

    fn bump(&mut self) -> u32 {
        self.gen = self.gen.wrapping_add(1) & 0xff_ffff;
        self.gen
    }
}

/// The enumerator endpoint. Build with [`Enumerator::new`], register,
/// kick with a timer, run the simulator, then read the records from the
/// returned handle.
#[derive(Debug)]
pub struct Enumerator {
    cfg: EnumConfig,
    targets: std::vec::IntoIter<Ipv4Addr>,
    sessions: Vec<Option<Session>>,
    /// Per-slot generation counters that survive session turnover: a
    /// stale timer or connect result from a finished session must never
    /// match a successor session on the same slot.
    slot_gens: Vec<u32>,
    free_slots: Vec<usize>,
    conns: HashMap<ConnId, (usize, bool)>,
    results: EnumResults,
    active: usize,
    /// Reused wire buffer for `"{line}\r\n"` command rendering.
    send_buf: Vec<u8>,
    /// Reused decoded-line strings for [`Enumerator::on_data`]; grows to
    /// the largest burst seen, then steady-state decoding is alloc-free.
    line_pool: Vec<String>,
}

impl Enumerator {
    /// Creates an enumerator over `targets` and returns it with the
    /// shared results handle.
    pub fn new(cfg: EnumConfig, targets: Vec<Ipv4Addr>) -> (Self, EnumResults) {
        let results: EnumResults = Rc::new(RefCell::new(Vec::new()));
        (
            Enumerator {
                cfg,
                targets: targets.into_iter(),
                sessions: Vec::new(),
                slot_gens: Vec::new(),
                free_slots: Vec::new(),
                conns: HashMap::new(),
                results: results.clone(),
                active: 0,
                send_buf: Vec::new(),
                line_pool: Vec::new(),
            },
            results,
        )
    }

    /// Remaining unstarted targets plus live sessions.
    pub fn in_flight(&self) -> usize {
        self.active
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        while self.active < self.cfg.max_concurrent {
            let Some(ip) = self.targets.next() else { return };
            let slot = match self.free_slots.pop() {
                Some(s) => s,
                None => {
                    self.sessions.push(None);
                    self.slot_gens.push(0);
                    self.sessions.len() - 1
                }
            };
            let mut session = Session::new(ip);
            session.gen = self.slot_gens[slot];
            let gen = session.bump();
            session.start_gen = gen;
            session.phase = Phase::Connecting;
            session.started_us = ctx.now().as_micros();
            self.sessions[slot] = Some(session);
            self.active += 1;
            if obs::enabled() {
                obs::counter(obs::Counter::SessionsStarted, 1);
                obs::gauge_max(obs::Gauge::MaxActiveSessions, self.active as u64);
            }
            ctx.connect(self.cfg.source_ip, ip, 21, token(slot, gen, KIND_CONTROL));
            ctx.set_timer(self.cfg.session_deadline, token(slot, gen, KIND_DEADLINE));
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let Some(mut session) = self.sessions[slot].take() else { return };
        // Invalidate every outstanding timer/connect of this session and
        // hand the advanced counter to the slot's next occupant.
        session.bump();
        self.slot_gens[slot] = session.gen;
        session.phase = Phase::Done;
        if let Some(c) = session.control.take() {
            self.conns.remove(&c);
            ctx.close(c);
        }
        if let Some(d) = session.data_conn.take() {
            self.conns.remove(&d);
            ctx.close(d);
        }
        if obs::enabled() {
            obs::counter(obs::Counter::SessionsFinished, 1);
            let sim_us = ctx.now().as_micros().saturating_sub(session.started_us);
            obs::observe(obs::Hist::SessionSimUs, sim_us);
            obs::observe(obs::Hist::SessionRequests, u64::from(session.record.requests_used));
            if let Some(reason) = session.record.gave_up {
                obs::counter(obs::Counter::GaveUps, 1);
                obs::event!(
                    "enum.gave_up",
                    ip = session.ip,
                    reason = reason.label(),
                    requests = session.record.requests_used,
                    sim_us = sim_us,
                );
            }
        }
        self.results.borrow_mut().push(session.record);
        self.free_slots.push(slot);
        self.active -= 1;
        self.start_next(ctx);
    }

    /// Queues `line` to be sent after the rate-limit gap, then moves to
    /// `next`. Returns `false` (and does nothing) when the request budget
    /// is exhausted.
    fn queue_cmd(
        &mut self,
        ctx: &mut Ctx<'_>,
        slot: usize,
        line: impl Into<Cow<'static, str>>,
        next: Phase,
    ) -> bool {
        let gap = self.cfg.request_gap;
        let Some(s) = self.sessions[slot].as_mut() else { return false };
        if s.record.requests_used >= self.cfg.request_cap {
            return false;
        }
        s.pending = Some((line.into(), next));
        let gen = s.bump();
        ctx.set_timer(gap, token(slot, gen, KIND_SEND));
        true
    }

    fn send_pending(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let timeout = self.cfg.step_timeout;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        let Some((line, next)) = s.pending.take() else { return };
        let Some(control) = s.control else { return };
        s.record.requests_used += 1;
        s.phase = next;
        s.got_final_reply = false;
        let gen = s.gen;
        self.send_buf.clear();
        self.send_buf.extend_from_slice(line.as_bytes());
        self.send_buf.extend_from_slice(b"\r\n");
        ctx.send(control, &self.send_buf);
        ctx.set_timer(timeout, token(slot, gen, KIND_TIMEOUT));
    }

    /// Remaining request budget once the wrap-up reserve is held back.
    fn traversal_budget_left(&self, slot: usize) -> bool {
        let Some(s) = self.sessions[slot].as_ref() else { return false };
        s.record.requests_used + 2 + RESERVED_REQUESTS <= self.cfg.request_cap
    }

    /// Re-dials the control channel after a backoff delay.
    fn retry_connect(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let src = self.cfg.source_ip;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        s.phase = Phase::Connecting;
        let gen = s.gen;
        let ip = s.ip;
        ctx.connect(src, ip, 21, token(slot, gen, KIND_CONTROL));
    }

    fn open_data_channel(&mut self, ctx: &mut Ctx<'_>, slot: usize, port: u16) {
        let src = self.cfg.source_ip;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        s.awaiting_data_connect = true;
        s.data_buf.clear();
        s.data_closed = false;
        let gen = s.gen;
        let ip = s.ip;
        ctx.connect(src, ip, port, token(slot, gen, KIND_DATA));
    }

    // ----- phase drivers -----

    fn begin_post_login(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        // Anonymous session established: fetch robots.txt first.
        if !self.queue_cmd(ctx, slot, "PASV", Phase::RobotsPasv) {
            self.begin_extras(ctx, slot);
        }
    }

    fn begin_traversal(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if let Some(s) = self.sessions[slot].as_mut() {
            let root: Rc<str> = Rc::from("/");
            s.queue.clear();
            s.queue.push_back((root.clone(), 0));
            s.visited.clear();
            s.visited.insert(root);
        }
        self.next_dir(ctx, slot);
    }

    fn next_dir(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let order = self.cfg.traversal;
        loop {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            let next = match order {
                crate::config::TraversalOrder::BreadthFirst => s.queue.pop_front(),
                crate::config::TraversalOrder::DepthFirst => s.queue.pop_back(),
            };
            let Some((dir, depth)) = next else {
                self.begin_extras(ctx, slot);
                return;
            };
            // Listing a directory fetches its contents, so match robots
            // rules against the container form ("/backup/"), as Google's
            // crawler does.
            if self.cfg.respect_robots
                && !self.sessions[slot]
                    .as_ref()
                    .map(|s| {
                        if dir.ends_with('/') {
                            s.robots.is_allowed(&dir)
                        } else {
                            s.robots.is_allowed(&format!("{dir}/"))
                        }
                    })
                    .unwrap_or(true)
            {
                continue;
            }
            if !self.traversal_budget_left(slot) {
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.truncated = true;
                }
                self.begin_extras(ctx, slot);
                return;
            }
            if self.queue_cmd(ctx, slot, "PASV", Phase::TravPasv { dir, depth }) {
                return;
            }
            // Budget refused the PASV; wrap up.
            if let Some(s) = self.sessions[slot].as_mut() {
                s.record.truncated = true;
            }
            self.begin_extras(ctx, slot);
            return;
        }
    }

    fn begin_extras(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if !self.queue_cmd(ctx, slot, "SYST", Phase::Syst) {
            self.begin_quit(ctx, slot);
        }
    }

    fn begin_port_probe_or_tls(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let logged_in = self.sessions[slot]
            .as_ref()
            .map(|s| s.record.login == LoginOutcome::Anonymous)
            .unwrap_or(false);
        if let (Some(collector), true) = (self.cfg.bounce_collector, logged_in) {
            let line = format!("PORT {}", collector.to_port_args());
            if self.queue_cmd(ctx, slot, line, Phase::PortProbe) {
                return;
            }
        }
        self.begin_tls(ctx, slot);
    }

    fn begin_tls(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if self.cfg.collect_certs
            && self.queue_cmd(ctx, slot, "AUTH TLS", Phase::AuthTls) {
                return;
            }
        self.begin_quit(ctx, slot);
    }

    fn begin_quit(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if !self.queue_cmd(ctx, slot, "QUIT", Phase::Quit) {
            self.finish(ctx, slot);
        }
    }

    // ----- transfer completion -----

    fn transfer_complete(&mut self, ctx: &mut Ctx<'_>, slot: usize, success: bool) {
        let phase = {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            if obs::enabled() && success {
                obs::observe(obs::Hist::TransferBytes, s.data_buf.len() as u64);
            }
            if let Some(d) = s.data_conn.take() {
                self.conns.remove(&d);
                ctx.close(d);
            }
            s.phase.clone()
        };
        match phase {
            Phase::RobotsRetr => {
                if success {
                    let (robots, present, denies_all) = {
                        let s = self.sessions[slot].as_ref().expect("session live");
                        // Borrowed `Cow` unless the body held invalid UTF-8.
                        let body = String::from_utf8_lossy(&s.data_buf);
                        let robots = Robots::parse(&body, &self.cfg.user_agent);
                        let denies = robots.denies_everything();
                        (robots, true, denies)
                    };
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.robots = robots;
                        s.record.robots.present = present;
                        s.record.robots.denies_all = denies_all;
                    }
                }
                let denies_all = self.sessions[slot]
                    .as_ref()
                    .map(|s| s.record.robots.denies_all)
                    .unwrap_or(false);
                if denies_all && self.cfg.respect_robots {
                    self.begin_extras(ctx, slot);
                } else {
                    self.begin_traversal(ctx, slot);
                }
            }
            Phase::TravList { dir, depth } => {
                if success {
                    self.ingest_listing(slot, &dir, depth);
                }
                self.next_dir(ctx, slot);
            }
            _ => {}
        }
    }

    fn ingest_listing(&mut self, slot: usize, dir: &str, depth: usize) {
        let max_depth = self.cfg.max_depth;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        // Entries own their strings, so the body borrow ends at the parse
        // and never forces an owned copy of the raw transfer bytes.
        let (entries, failures) = {
            let body = String::from_utf8_lossy(&s.data_buf);
            listing::parse_body(&body, s.listing_hint)
        };
        s.record.unparsed_lines += failures as u64;
        // Adopt the format of the first successful parse as the hint.
        for e in entries {
            if e.name == "." || e.name == ".." {
                continue;
            }
            // The joined path is written straight into the record's
            // columnar arena — no per-entry String materializes here.
            s.record.files.push_parts(
                dir,
                &e.name,
                e.is_dir,
                e.size,
                e.readability(),
                e.owner.as_deref(),
                e.permissions.map(|p| p.other_write()),
            );
            if e.is_dir && !e.is_symlink && depth < max_depth {
                let path = s.record.files.last_path().unwrap_or_default();
                let shared: Rc<str> = Rc::from(path);
                if s.visited.insert(shared.clone()) {
                    s.queue.push_back((shared, depth + 1));
                }
            }
        }
    }

    // ----- reply handling -----

    #[allow(clippy::too_many_lines)]
    fn on_reply(&mut self, ctx: &mut Ctx<'_>, slot: usize, reply: Reply) {
        // Strict-mode ablation: any multiline reply or out-of-spec code
        // aborts the session (the un-hardened parser of DESIGN.md §5.4).
        if self.cfg.strict_replies && reply.lines().len() > 1 {
            self.finish(ctx, slot);
            return;
        }
        let code = reply.code().value();
        let preliminary = reply.code().is_positive_preliminary();
        if obs::enabled() {
            obs::counter(obs::Counter::RepliesTotal, 1);
            obs::counter(obs::reply_class_counter(code), 1);
        }
        let phase = {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            // A reply ends the step-timeout window.
            s.bump();
            s.phase.clone()
        };
        match phase {
            Phase::Connecting => { /* ignore stray */ }
            Phase::Banner => {
                if code == 220 {
                    let banner_text = reply.full_text();
                    let parsed = Banner::parse(&banner_text);
                    let forbids = parsed.forbids_anonymous();
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.banner = Some(banner_text);
                        s.record.ftp_compliant = true;
                        // IIS and friends emit DOS listings; seed the hint.
                        if parsed.software().family
                            == ftp_proto::SoftwareFamily::MicrosoftFtp
                        {
                            s.listing_hint = ListingFormat::Dos;
                        }
                    }
                    if forbids {
                        if let Some(s) = self.sessions[slot].as_mut() {
                            s.record.login = LoginOutcome::SkippedBannerForbids;
                        }
                        self.begin_tls(ctx, slot);
                    } else if !self.queue_cmd(ctx, slot, "USER anonymous", Phase::User) {
                        self.begin_quit(ctx, slot);
                    }
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::NotFtp;
                    }
                    self.finish(ctx, slot);
                }
            }
            Phase::User => {
                if code == 230 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Anonymous;
                    }
                    self.begin_post_login(ctx, slot);
                } else if code == 331 || code == 332 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.last_331_text = reply.full_text();
                    }
                    let pass = format!("PASS {}", self.cfg.password);
                    if !self.queue_cmd(ctx, slot, pass, Phase::Pass) {
                        self.begin_quit(ctx, slot);
                    }
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Denied;
                    }
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::Pass => {
                if code == 230 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Anonymous;
                    }
                    self.begin_post_login(ctx, slot);
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Denied;
                        let hint = s.last_331_text.to_ascii_lowercase();
                        if hint.contains("encryption")
                            || hint.contains("tls")
                            || hint.contains("ftps")
                            || hint.contains("secure")
                        {
                            s.record.ftps.required_before_login = true;
                        }
                    }
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::RobotsPasv | Phase::TravPasv { .. } => {
                if code == 227 {
                    match HostPort::parse_pasv_reply(reply.text()) {
                        Ok(hp) => {
                            if let Some(s) = self.sessions[slot].as_mut() {
                                if s.record.pasv_addr.is_none() {
                                    s.record.pasv_addr = Some(hp);
                                }
                            }
                            self.open_data_channel(ctx, slot, hp.port());
                        }
                        Err(_) => self.begin_extras(ctx, slot),
                    }
                } else {
                    // Server without working PASV: no traversal possible.
                    self.begin_extras(ctx, slot);
                }
            }
            Phase::RobotsRetr | Phase::TravList { .. } => {
                if preliminary {
                    // 150 — keep waiting.
                } else if code >= 400 {
                    self.transfer_complete(ctx, slot, false);
                } else {
                    let done = {
                        let Some(s) = self.sessions[slot].as_mut() else { return };
                        s.got_final_reply = true;
                        s.data_closed || s.data_conn.is_none()
                    };
                    if done {
                        self.transfer_complete(ctx, slot, true);
                    }
                }
            }
            Phase::Syst => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    if code == 215 {
                        s.record.syst = Some(reply.full_text());
                    }
                }
                if !self.queue_cmd(ctx, slot, "HELP", Phase::Help) {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::Help => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    if code == 214 || code == 211 {
                        s.record.help = Some(reply.full_text());
                    }
                }
                if !self.queue_cmd(ctx, slot, "FEAT", Phase::Feat) {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::Feat => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    // Parse the reply's lines exactly once; a FEAT body is
                    // "211-Features:" / one line per feature / "211 End".
                    let lines = reply.lines();
                    if code == 211 && lines.len() > 2 {
                        s.record.feat = lines[1..lines.len() - 1].to_vec();
                    }
                }
                if !self.queue_cmd(ctx, slot, "SITE HELP", Phase::Site) {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::Site => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    if code < 300 {
                        s.record.site = Some(reply.full_text());
                    }
                }
                self.begin_port_probe_or_tls(ctx, slot);
            }
            Phase::PortProbe => {
                if code == 200 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.port_accepts_third_party = Some(true);
                    }
                    // Trigger the actual bounce so the collector can
                    // confirm the connection.
                    if !self.queue_cmd(ctx, slot, "LIST /", Phase::PortList) {
                        self.begin_tls(ctx, slot);
                    }
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.port_accepts_third_party = Some(false);
                    }
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::PortList => {
                if !preliminary {
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::AuthTls => {
                if code == 234 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.ftps.supported = true;
                        if let Some(c) = s.control {
                            self.send_buf.clear();
                            self.send_buf.extend_from_slice(simtls::CLIENT_HELLO.as_bytes());
                            self.send_buf.extend_from_slice(b"\r\n");
                            ctx.send(c, &self.send_buf);
                        }
                        s.phase = Phase::TlsHello;
                        let gen = s.gen;
                        let timeout = self.cfg.step_timeout;
                        ctx.set_timer(timeout, token(slot, gen, KIND_TIMEOUT));
                    }
                } else {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::TlsHello => { /* cert arrives as a SIMTLS line, not a reply */ }
            Phase::Quit => {
                self.finish(ctx, slot);
            }
            Phase::Done => {}
        }
    }

    fn on_control_line(&mut self, ctx: &mut Ctx<'_>, slot: usize, line: &str) {
        // Simulated-TLS certificate line.
        if line.starts_with('\u{1}') {
            let in_hello = self.sessions[slot]
                .as_ref()
                .map(|s| s.phase == Phase::TlsHello)
                .unwrap_or(false);
            if in_hello {
                if let Some(cert) = SimCertificate::parse_server_hello(line) {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.ftps.cert = Some(cert);
                        s.bump();
                    }
                }
                self.begin_quit(ctx, slot);
            }
            return;
        }
        let parsed = {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            s.parser.push_line(line)
        };
        match parsed {
            Ok(Some(reply)) => self.on_reply(ctx, slot, reply),
            Ok(None) => {}
            Err(_) => {
                // Garbage on the control channel: not an FTP server (or
                // one broken beyond use).
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.faults.garbage_lines += 1;
                    s.record.gave_up = Some(GaveUpReason::ControlGarbage);
                    if s.phase == Phase::Banner {
                        s.record.login = LoginOutcome::NotFtp;
                    }
                }
                self.finish(ctx, slot);
            }
        }
    }
}

impl Endpoint for Enumerator {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        if t == 0 {
            // Kick-off timer from the orchestrator.
            self.start_next(ctx);
            return;
        }
        let (slot, gen, kind) = untoken(t);
        let Some(Some(s)) = self.sessions.get(slot) else { return };
        // The deadline timer is pinned to the session's *starting*
        // generation; every other timer must match the current one.
        let expected = if kind == KIND_DEADLINE { s.start_gen } else { s.gen };
        if expected != gen {
            return; // stale timer
        }
        match kind {
            KIND_SEND => self.send_pending(ctx, slot),
            KIND_TIMEOUT => {
                // The step stalled: give up and keep the partial record.
                if obs::enabled() {
                    obs::counter(obs::Counter::StepTimeouts, 1);
                }
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.faults.step_timeouts += 1;
                    s.record.gave_up = Some(GaveUpReason::StepTimeout);
                }
                self.finish(ctx, slot);
            }
            KIND_RETRY => self.retry_connect(ctx, slot),
            KIND_DEADLINE => {
                // Whole-session backstop: no single host, however
                // hostile, may hold its slot past this bound.
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.gave_up = Some(GaveUpReason::SessionDeadline);
                }
                self.finish(ctx, slot);
            }
            _ => {}
        }
    }

    fn on_outbound(&mut self, ctx: &mut Ctx<'_>, t: u64, result: Result<ConnId, ConnectError>) {
        let (slot, gen, kind) = untoken(t);
        let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
        if s.gen != gen {
            // Stale connect (session moved on); close if it succeeded.
            if let Ok(conn) = result {
                ctx.close(conn);
            }
            return;
        }
        match (kind, result) {
            (KIND_CONTROL, Ok(conn)) => {
                s.control = Some(conn);
                s.phase = Phase::Banner;
                self.conns.insert(conn, (slot, false));
                let timeout = self.cfg.step_timeout;
                let gen = s.gen;
                ctx.set_timer(timeout, token(slot, gen, KIND_TIMEOUT));
            }
            (KIND_CONTROL, Err(_)) => {
                // Lost SYN or refused connect: retry on the backoff
                // schedule until the budget runs out.
                if obs::enabled() {
                    obs::counter(obs::Counter::ConnectFailures, 1);
                }
                let retries_used = s.record.faults.connect_retries;
                if let Some(delay) = self.cfg.retry.delay_for(retries_used) {
                    s.record.faults.connect_retries += 1;
                    if obs::enabled() {
                        obs::counter(obs::Counter::ConnectRetries, 1);
                        obs::counter(obs::Counter::BackoffWaitUs, delay.as_micros());
                        obs::event!(
                            "enum.retry",
                            ip = s.ip,
                            attempt = s.record.faults.connect_retries,
                            backoff_us = delay.as_micros(),
                        );
                    }
                    let gen = s.bump();
                    ctx.set_timer(delay, token(slot, gen, KIND_RETRY));
                } else {
                    s.record.login = LoginOutcome::Aborted;
                    s.record.gave_up = Some(GaveUpReason::ConnectFailed);
                    self.finish(ctx, slot);
                }
            }
            (KIND_DATA, Ok(conn)) => {
                s.data_conn = Some(conn);
                s.awaiting_data_connect = false;
                self.conns.insert(conn, (slot, true));
                // Data channel up: issue the transfer command.
                let phase = s.phase.clone();
                match phase {
                    Phase::RobotsPasv
                        if !self.queue_cmd(
                            ctx,
                            slot,
                            "RETR robots.txt",
                            Phase::RobotsRetr,
                        ) => {
                            self.begin_extras(ctx, slot);
                        }
                    Phase::TravPasv { dir, depth } => {
                        let cmd: Cow<'static, str> = if &*dir == "/" {
                            Cow::Borrowed("LIST /")
                        } else {
                            Cow::Owned(format!("LIST {dir}"))
                        };
                        if !self.queue_cmd(ctx, slot, cmd, Phase::TravList { dir, depth }) {
                            if let Some(s) = self.sessions[slot].as_mut() {
                                s.record.truncated = true;
                            }
                            self.begin_extras(ctx, slot);
                        }
                    }
                    _ => {}
                }
            }
            (KIND_DATA, Err(_)) => {
                if obs::enabled() {
                    obs::counter(obs::Counter::ConnectFailures, 1);
                }
                s.record.faults.data_conn_failures += 1;
                s.awaiting_data_connect = false;
                // No data channel: skip whatever needed it.
                let phase = s.phase.clone();
                match phase {
                    Phase::RobotsPasv => self.begin_traversal(ctx, slot),
                    Phase::TravPasv { .. } => self.begin_extras(ctx, slot),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let Some(&(slot, is_data)) = self.conns.get(&conn) else { return };
        if is_data {
            if obs::enabled() {
                obs::counter(obs::Counter::ListingBytes, data.len() as u64);
            }
            if let Some(Some(s)) = self.sessions.get_mut(slot) {
                s.data_buf.extend_from_slice(data);
            }
            return;
        }
        // Decode into pooled strings: the batch must be fully framed
        // before dispatch (an over-long line aborts the whole batch), and
        // the pool makes steady-state decoding allocation-free.
        let mut lines = std::mem::take(&mut self.line_pool);
        let mut n = 0;
        let owner_ip;
        let framed_ok = {
            let Some(Some(s)) = self.sessions.get_mut(slot) else {
                self.line_pool = lines;
                return;
            };
            owner_ip = s.ip;
            s.codec.extend(data);
            loop {
                if n == lines.len() {
                    lines.push(String::new());
                }
                match s.codec.next_line_into(&mut lines[n]) {
                    Ok(true) => n += 1,
                    Ok(false) => break true,
                    Err(_) => {
                        // Hostile over-long line: abort, keeping what we
                        // have and classifying the host if it never even
                        // greeted properly.
                        s.record.faults.overlong_lines += 1;
                        s.record.gave_up = Some(GaveUpReason::OverlongLine);
                        if s.phase == Phase::Banner {
                            s.record.login = LoginOutcome::NotFtp;
                        }
                        break false;
                    }
                }
            }
        };
        if !framed_ok {
            self.finish(ctx, slot);
            self.line_pool = lines;
            return;
        }
        for line in &lines[..n] {
            self.on_control_line(ctx, slot, line);
            // The session may have finished mid-loop — and the slot may
            // already be re-occupied by a *different* host's session.
            // Leftover lines belong to the dead session; never leak them.
            let still_ours = matches!(
                self.sessions.get(slot),
                Some(Some(s)) if s.ip == owner_ip
            );
            if !still_ours {
                break;
            }
        }
        self.line_pool = lines;
    }

    fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let Some((slot, is_data)) = self.conns.remove(&conn) else { return };
        if is_data {
            let done = {
                let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
                if s.data_conn == Some(conn) {
                    s.data_conn = None;
                }
                s.data_closed = true;
                s.got_final_reply
                    && matches!(s.phase, Phase::RobotsRetr | Phase::TravList { .. })
            };
            if done {
                self.transfer_complete(ctx, slot, true);
            }
            return;
        }
        // Control closed by the server: explicit refusal of service.
        let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
        s.control = None;
        if s.phase != Phase::Quit && s.phase != Phase::Done {
            s.record.server_terminated = true;
        }
        self.finish(ctx, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        for (slot, gen, kind) in [(0usize, 0u32, 0u64), (5, 1000, 3), (65_000, 0xff_ffff, 1)] {
            let t = token(slot, gen, kind);
            assert_eq!(untoken(t), (slot, gen, kind));
        }
    }

    // Compile-time guard: the wrap-up reserve must be non-zero.
    const _: () = assert!(RESERVED_REQUESTS > 0);
}
