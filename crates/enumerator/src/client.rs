//! The enumeration engine: concurrent, quirk-tolerant FTP sessions.
//!
//! One [`Enumerator`] endpoint drives up to `max_concurrent` host
//! sessions at once, each a small per-phase state machine advanced by
//! network events. Every command is paced by the configured request gap
//! (the paper's two-requests-per-second limit) and guarded by a step
//! timeout; a server that hangs up mid-session is recorded as having
//! refused service and is never contacted again.
//!
//! Sessions are hardened against hostile hosts (DESIGN.md "Fault
//! model"): failed connects retry on a bounded exponential backoff, a
//! per-session wall-clock deadline backstops every other defense, and
//! each give-up path records a [`GaveUpReason`] plus fault counters on
//! the partial record instead of panicking or hanging.
//!
//! The session loop is allocation-free at steady state (DESIGN.md §8):
//! control lines are dispatched as borrows of the codec's buffer,
//! replies accumulate in a reused [`ReplyBuf`] and reach the state
//! machine as [`ReplyRef`] borrows, commands render into a reused
//! per-session buffer, and LIST bodies parse line-by-line straight out
//! of the raw transfer bytes into the columnar
//! [`FileTable`](crate::record::FileTable).

use crate::config::EnumConfig;
use crate::record::{GaveUpReason, HostRecord, LoginOutcome};
use ftp_proto::listing::{self, ListingFormat};
use ftp_proto::reply::{ReplyBuf, ReplyRef};
use ftp_proto::{Banner, HostPort, LineCodec, Robots};
use netsim::{ConnId, ConnectError, Ctx, Endpoint};
use simtls::SimCertificate;
use std::cell::RefCell;
use netsim::fasthash::{FastMap, FastSet};
use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Shared handle to the accumulated records.
pub type EnumResults = Rc<RefCell<Vec<HostRecord>>>;

/// Commands reserved after traversal for the wrap-up phases
/// (SYST/HELP/FEAT/SITE/PORT/LIST/AUTH/QUIT).
const RESERVED_REQUESTS: u32 = 8;

/// Session phases. `Copy` on purpose: the per-reply phase read on the
/// traversal hot path is a plain load. The directory being traversed
/// lives in [`Session::cur_dir`]/[`Session::cur_depth`] — traversal is
/// strictly sequential per session, so one slot suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Connecting,
    Banner,
    User,
    Pass,
    RobotsPasv,
    RobotsRetr,
    TravPasv,
    TravList,
    Syst,
    Help,
    Feat,
    Site,
    PortProbe,
    PortList,
    AuthTls,
    TlsHello,
    Quit,
    Done,
}

impl Phase {
    /// Stable snake_case tag for host journals and diagnostics.
    const fn label(self) -> &'static str {
        match self {
            Phase::Connecting => "connecting",
            Phase::Banner => "banner",
            Phase::User => "user",
            Phase::Pass => "pass",
            Phase::RobotsPasv => "robots_pasv",
            Phase::RobotsRetr => "robots_retr",
            Phase::TravPasv => "trav_pasv",
            Phase::TravList => "trav_list",
            Phase::Syst => "syst",
            Phase::Help => "help",
            Phase::Feat => "feat",
            Phase::Site => "site",
            Phase::PortProbe => "port_probe",
            Phase::PortList => "port_list",
            Phase::AuthTls => "auth_tls",
            Phase::TlsHello => "tls_hello",
            Phase::Quit => "quit",
            Phase::Done => "done",
        }
    }
}

/// What to render into the pending-command buffer. Commands that embed
/// config or session state are rendered inside [`Enumerator::queue_cmd`]
/// (where both halves of `self` are in scope) instead of being built
/// with `format!` at every call site.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    Fixed(&'static str),
    /// `PASS <cfg.password>`.
    Pass,
    /// `PORT <cfg.bounce_collector as h1,h2,h3,h4,p1,p2>`.
    Port,
    /// `LIST <session.cur_dir>`.
    ListCurDir,
}

const KIND_SEND: u64 = 0;
const KIND_TIMEOUT: u64 = 1;
const KIND_CONTROL: u64 = 2;
const KIND_DATA: u64 = 3;
const KIND_RETRY: u64 = 4;
const KIND_DEADLINE: u64 = 5;

fn token(slot: usize, gen: u32, kind: u64) -> u64 {
    ((slot as u64) << 32) | ((gen as u64 & 0xff_ffff) << 8) | kind
}

fn untoken(t: u64) -> (usize, u32, u64) {
    (((t >> 32) & 0xffff_ffff) as usize, ((t >> 8) & 0xff_ffff) as u32, t & 0xff)
}

#[derive(Debug)]
struct Session {
    ip: Ipv4Addr,
    gen: u32,
    /// The generation at session start; the session-deadline timer is
    /// validated against this (unlike step timers, it must survive the
    /// constant generation bumps of a live session).
    start_gen: u32,
    record: HostRecord,
    control: Option<ConnId>,
    codec: LineCodec,
    reply: ReplyBuf,
    phase: Phase,
    /// Rendered command awaiting its rate-limit gap; reused so
    /// steady-state command building is allocation-free.
    pending_cmd: String,
    pending_next: Option<Phase>,
    /// Directory currently being traversed (PASV → LIST → ingest).
    cur_dir: Rc<str>,
    cur_depth: usize,
    data_conn: Option<ConnId>,
    data_buf: Vec<u8>,
    data_closed: bool,
    awaiting_data_connect: bool,
    got_final_reply: bool,
    last_331_text: String,
    robots: Robots,
    queue: VecDeque<(Rc<str>, usize)>,
    visited: FastSet<Rc<str>>,
    listing_hint: ListingFormat,
    /// Scratch for the rare listing line that needs a lossy re-decode.
    line_scratch: String,
    /// Sim time (µs) when the session's first connect was issued; only
    /// read by the observability layer for the session-latency histogram.
    started_us: u64,
}

impl Session {
    fn new(ip: Ipv4Addr) -> Self {
        Session {
            ip,
            gen: 0,
            start_gen: 0,
            record: HostRecord::new(ip),
            control: None,
            codec: LineCodec::new(),
            reply: ReplyBuf::new(),
            phase: Phase::Connecting,
            pending_cmd: String::new(),
            pending_next: None,
            cur_dir: Rc::from("/"),
            cur_depth: 0,
            data_conn: None,
            data_buf: Vec::new(),
            data_closed: false,
            awaiting_data_connect: false,
            got_final_reply: false,
            last_331_text: String::new(),
            robots: Robots::allow_all(),
            queue: VecDeque::new(),
            visited: FastSet::default(),
            listing_hint: ListingFormat::Unix,
            line_scratch: String::new(),
            started_us: 0,
        }
    }

    fn bump(&mut self) -> u32 {
        self.gen = self.gen.wrapping_add(1) & 0xff_ffff;
        self.gen
    }
}

/// The enumerator endpoint. Build with [`Enumerator::new`], register,
/// kick with a timer, run the simulator, then read the records from the
/// returned handle.
#[derive(Debug)]
pub struct Enumerator {
    cfg: EnumConfig,
    targets: std::vec::IntoIter<Ipv4Addr>,
    sessions: Vec<Option<Session>>,
    /// Per-slot generation counters that survive session turnover: a
    /// stale timer or connect result from a finished session must never
    /// match a successor session on the same slot.
    slot_gens: Vec<u32>,
    free_slots: Vec<usize>,
    conns: FastMap<ConnId, (usize, bool)>,
    results: EnumResults,
    active: usize,
    /// Reused wire buffer for `"{line}\r\n"` command rendering.
    send_buf: Vec<u8>,
}

impl Enumerator {
    /// Creates an enumerator over `targets` and returns it with the
    /// shared results handle.
    pub fn new(cfg: EnumConfig, targets: Vec<Ipv4Addr>) -> (Self, EnumResults) {
        let results: EnumResults = Rc::new(RefCell::new(Vec::new()));
        (
            Enumerator {
                cfg,
                targets: targets.into_iter(),
                sessions: Vec::new(),
                slot_gens: Vec::new(),
                free_slots: Vec::new(),
                conns: FastMap::default(),
                results: results.clone(),
                active: 0,
                send_buf: Vec::new(),
            },
            results,
        )
    }

    /// Remaining unstarted targets plus live sessions.
    pub fn in_flight(&self) -> usize {
        self.active
    }

    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        while self.active < self.cfg.max_concurrent {
            let Some(ip) = self.targets.next() else { return };
            let slot = match self.free_slots.pop() {
                Some(s) => s,
                None => {
                    self.sessions.push(None);
                    self.slot_gens.push(0);
                    self.sessions.len() - 1
                }
            };
            let mut session = Session::new(ip);
            session.gen = self.slot_gens[slot];
            let gen = session.bump();
            session.start_gen = gen;
            session.phase = Phase::Connecting;
            session.started_us = ctx.now().as_micros();
            self.sessions[slot] = Some(session);
            self.active += 1;
            if obs::enabled() {
                obs::counter(obs::Counter::SessionsStarted, 1);
                obs::gauge_max(obs::Gauge::MaxActiveSessions, self.active as u64);
            }
            obs::journal!(ip, obs::JournalEvent::SessionStart);
            obs::journal!(ip, obs::JournalEvent::Phase { phase: Phase::Connecting.label() });
            ctx.connect(self.cfg.source_ip, ip, 21, token(slot, gen, KIND_CONTROL));
            ctx.set_timer(self.cfg.session_deadline, token(slot, gen, KIND_DEADLINE));
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let Some(mut session) = self.sessions[slot].take() else { return };
        // Invalidate every outstanding timer/connect of this session and
        // hand the advanced counter to the slot's next occupant.
        session.bump();
        self.slot_gens[slot] = session.gen;
        session.phase = Phase::Done;
        if let Some(c) = session.control.take() {
            self.conns.remove(&c);
            ctx.close(c);
        }
        if let Some(d) = session.data_conn.take() {
            self.conns.remove(&d);
            ctx.close(d);
        }
        if obs::enabled() {
            obs::counter(obs::Counter::SessionsFinished, 1);
            let sim_us = ctx.now().as_micros().saturating_sub(session.started_us);
            obs::observe(obs::Hist::SessionSimUs, sim_us);
            obs::observe(obs::Hist::SessionRequests, u64::from(session.record.requests_used));
            if let Some(reason) = session.record.gave_up {
                obs::counter(obs::Counter::GaveUps, 1);
                obs::event!(
                    "enum.gave_up",
                    ip = session.ip,
                    reason = reason.label(),
                    requests = session.record.requests_used,
                    sim_us = sim_us,
                );
            }
        }
        obs::journal!(
            session.ip,
            obs::JournalEvent::SessionEnd {
                login: session.record.login.label(),
                gave_up: session.record.gave_up.map(GaveUpReason::label),
                requests: session.record.requests_used,
                files: session.record.files.len() as u64,
            }
        );
        self.results.borrow_mut().push(session.record);
        self.free_slots.push(slot);
        self.active -= 1;
        self.start_next(ctx);
    }

    /// Renders `cmd` into the session's pending buffer to be sent after
    /// the rate-limit gap, then moves to `next`. Returns `false` (and
    /// does nothing) when the request budget is exhausted.
    fn queue_cmd(&mut self, ctx: &mut Ctx<'_>, slot: usize, cmd: Cmd, next: Phase) -> bool {
        use std::fmt::Write as _;
        let gap = self.cfg.request_gap;
        let Some(s) = self.sessions[slot].as_mut() else { return false };
        if s.record.requests_used >= self.cfg.request_cap {
            return false;
        }
        s.pending_cmd.clear();
        match cmd {
            Cmd::Fixed(line) => s.pending_cmd.push_str(line),
            Cmd::Pass => {
                s.pending_cmd.push_str("PASS ");
                s.pending_cmd.push_str(&self.cfg.password);
            }
            Cmd::Port => {
                let Some(collector) = self.cfg.bounce_collector else { return false };
                let _ = write!(s.pending_cmd, "PORT {}", collector.port_args());
            }
            Cmd::ListCurDir => {
                s.pending_cmd.push_str("LIST ");
                s.pending_cmd.push_str(&s.cur_dir);
            }
        }
        s.pending_next = Some(next);
        let gen = s.bump();
        ctx.set_timer(gap, token(slot, gen, KIND_SEND));
        true
    }

    fn send_pending(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let timeout = self.cfg.step_timeout;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        let Some(next) = s.pending_next.take() else { return };
        let Some(control) = s.control else { return };
        s.record.requests_used += 1;
        s.phase = next;
        obs::journal!(s.ip, obs::JournalEvent::Phase { phase: next.label() });
        s.got_final_reply = false;
        let gen = s.gen;
        self.send_buf.clear();
        self.send_buf.extend_from_slice(s.pending_cmd.as_bytes());
        self.send_buf.extend_from_slice(b"\r\n");
        ctx.send(control, &self.send_buf);
        ctx.set_timer(timeout, token(slot, gen, KIND_TIMEOUT));
    }

    /// Remaining request budget once the wrap-up reserve is held back.
    fn traversal_budget_left(&self, slot: usize) -> bool {
        let Some(s) = self.sessions[slot].as_ref() else { return false };
        s.record.requests_used + 2 + RESERVED_REQUESTS <= self.cfg.request_cap
    }

    /// Re-dials the control channel after a backoff delay.
    fn retry_connect(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let src = self.cfg.source_ip;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        s.phase = Phase::Connecting;
        obs::journal!(s.ip, obs::JournalEvent::Phase { phase: Phase::Connecting.label() });
        let gen = s.gen;
        let ip = s.ip;
        ctx.connect(src, ip, 21, token(slot, gen, KIND_CONTROL));
    }

    fn open_data_channel(&mut self, ctx: &mut Ctx<'_>, slot: usize, port: u16) {
        let src = self.cfg.source_ip;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        s.awaiting_data_connect = true;
        s.data_buf.clear();
        s.data_closed = false;
        let gen = s.gen;
        let ip = s.ip;
        ctx.connect(src, ip, port, token(slot, gen, KIND_DATA));
    }

    // ----- phase drivers -----

    fn begin_post_login(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        // Anonymous session established: fetch robots.txt first.
        if !self.queue_cmd(ctx, slot, Cmd::Fixed("PASV"), Phase::RobotsPasv) {
            self.begin_extras(ctx, slot);
        }
    }

    fn begin_traversal(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if let Some(s) = self.sessions[slot].as_mut() {
            let root: Rc<str> = Rc::from("/");
            s.queue.clear();
            s.queue.push_back((root.clone(), 0));
            s.visited.clear();
            s.visited.insert(root);
        }
        self.next_dir(ctx, slot);
    }

    fn next_dir(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let order = self.cfg.traversal;
        loop {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            let next = match order {
                crate::config::TraversalOrder::BreadthFirst => s.queue.pop_front(),
                crate::config::TraversalOrder::DepthFirst => s.queue.pop_back(),
            };
            let Some((dir, depth)) = next else {
                self.begin_extras(ctx, slot);
                return;
            };
            // Listing a directory fetches its contents, so match robots
            // rules against the container form ("/backup/"), as Google's
            // crawler does.
            if self.cfg.respect_robots
                && !self.sessions[slot]
                    .as_ref()
                    .map(|s| {
                        if dir.ends_with('/') {
                            s.robots.is_allowed(&dir)
                        } else {
                            s.robots.is_allowed_dir(&dir)
                        }
                    })
                    .unwrap_or(true)
            {
                continue;
            }
            if !self.traversal_budget_left(slot) {
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.truncated = true;
                }
                self.begin_extras(ctx, slot);
                return;
            }
            if let Some(s) = self.sessions[slot].as_mut() {
                s.cur_dir = dir;
                s.cur_depth = depth;
            }
            if self.queue_cmd(ctx, slot, Cmd::Fixed("PASV"), Phase::TravPasv) {
                return;
            }
            // Budget refused the PASV; wrap up.
            if let Some(s) = self.sessions[slot].as_mut() {
                s.record.truncated = true;
            }
            self.begin_extras(ctx, slot);
            return;
        }
    }

    fn begin_extras(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if !self.queue_cmd(ctx, slot, Cmd::Fixed("SYST"), Phase::Syst) {
            self.begin_quit(ctx, slot);
        }
    }

    fn begin_port_probe_or_tls(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        let logged_in = self.sessions[slot]
            .as_ref()
            .map(|s| s.record.login == LoginOutcome::Anonymous)
            .unwrap_or(false);
        if self.cfg.bounce_collector.is_some()
            && logged_in
            && self.queue_cmd(ctx, slot, Cmd::Port, Phase::PortProbe)
        {
            return;
        }
        self.begin_tls(ctx, slot);
    }

    fn begin_tls(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if self.cfg.collect_certs
            && self.queue_cmd(ctx, slot, Cmd::Fixed("AUTH TLS"), Phase::AuthTls) {
                return;
            }
        self.begin_quit(ctx, slot);
    }

    fn begin_quit(&mut self, ctx: &mut Ctx<'_>, slot: usize) {
        if !self.queue_cmd(ctx, slot, Cmd::Fixed("QUIT"), Phase::Quit) {
            self.finish(ctx, slot);
        }
    }

    // ----- transfer completion -----

    fn transfer_complete(&mut self, ctx: &mut Ctx<'_>, slot: usize, success: bool) {
        let (phase, depth) = {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            if obs::enabled() && success {
                obs::observe(obs::Hist::TransferBytes, s.data_buf.len() as u64);
            }
            if let Some(d) = s.data_conn.take() {
                self.conns.remove(&d);
                ctx.close(d);
            }
            (s.phase, s.cur_depth)
        };
        match phase {
            Phase::RobotsRetr => {
                if success {
                    let (robots, present, denies_all) = {
                        let s = self.sessions[slot].as_ref().expect("session live");
                        // Borrowed `Cow` unless the body held invalid UTF-8.
                        let body = String::from_utf8_lossy(&s.data_buf);
                        let robots = Robots::parse(&body, &self.cfg.user_agent);
                        let denies = robots.denies_everything();
                        (robots, true, denies)
                    };
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.robots = robots;
                        s.record.robots.present = present;
                        s.record.robots.denies_all = denies_all;
                    }
                }
                let denies_all = self.sessions[slot]
                    .as_ref()
                    .map(|s| s.record.robots.denies_all)
                    .unwrap_or(false);
                if denies_all && self.cfg.respect_robots {
                    self.begin_extras(ctx, slot);
                } else {
                    self.begin_traversal(ctx, slot);
                }
            }
            Phase::TravList => {
                if success {
                    self.ingest_listing(slot, depth);
                }
                self.next_dir(ctx, slot);
            }
            _ => {}
        }
    }

    fn ingest_listing(&mut self, slot: usize, depth: usize) {
        let max_depth = self.cfg.max_depth;
        let Some(s) = self.sessions[slot].as_mut() else { return };
        let dir = s.cur_dir.clone();
        // Parse straight out of the raw transfer bytes, one line at a
        // time: no whole-body decode, no per-entry owned strings.
        // Splitting on the byte level and lossy-decoding only the rare
        // invalid line is equivalent to lossy-decoding the whole body
        // first — multi-byte UTF-8 sequences never contain '\n', and
        // replacement-character insertion is local to the bad sequence.
        let data_buf = std::mem::take(&mut s.data_buf);
        let mut rest = data_buf.as_slice();
        while !rest.is_empty() {
            let (mut line, tail) = match rest.iter().position(|&b| b == b'\n') {
                Some(p) => (&rest[..p], &rest[p + 1..]),
                None => (rest, &rest[rest.len()..]),
            };
            rest = tail;
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let parsed = match std::str::from_utf8(line) {
                Ok(text) => listing::parse_line_ref(text, s.listing_hint),
                Err(_) => {
                    s.line_scratch.clear();
                    ftp_proto::lossy_append(&mut s.line_scratch, line);
                    listing::parse_line_ref(&s.line_scratch, s.listing_hint)
                }
            };
            match parsed {
                Ok(Some(e)) => {
                    if e.name == "." || e.name == ".." {
                        continue;
                    }
                    // The joined path is written straight into the
                    // record's columnar arena — no per-entry String
                    // materializes here.
                    s.record.files.push_parts(
                        &dir,
                        e.name,
                        e.is_dir,
                        e.size,
                        e.readability(),
                        e.owner,
                        e.permissions.map(|p| p.other_write()),
                    );
                    if e.is_dir && !e.is_symlink && depth < max_depth {
                        let path = s.record.files.last_path().unwrap_or_default();
                        let shared: Rc<str> = Rc::from(path);
                        if s.visited.insert(shared.clone()) {
                            s.queue.push_back((shared, depth + 1));
                        }
                    }
                }
                Ok(None) => {}
                Err(_) => s.record.unparsed_lines += 1,
            }
        }
        s.data_buf = data_buf;
    }

    // ----- reply handling -----

    #[allow(clippy::too_many_lines)]
    fn on_reply(&mut self, ctx: &mut Ctx<'_>, slot: usize, reply: ReplyRef<'_>) {
        // Strict-mode ablation: any multiline reply or out-of-spec code
        // aborts the session (the un-hardened parser of DESIGN.md §5.4).
        if self.cfg.strict_replies && reply.has_multiple_lines() {
            self.finish(ctx, slot);
            return;
        }
        let code = reply.code().value();
        let preliminary = reply.code().is_positive_preliminary();
        if obs::enabled() {
            obs::counter(obs::Counter::RepliesTotal, 1);
            obs::counter(obs::reply_class_counter(code), 1);
        }
        let phase = {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            // A reply ends the step-timeout window.
            s.bump();
            obs::journal!(s.ip, obs::JournalEvent::Reply { code });
            s.phase
        };
        match phase {
            Phase::Connecting => { /* ignore stray */ }
            Phase::Banner => {
                if code == 220 {
                    let parsed = Banner::parse(reply.full_text());
                    let forbids = parsed.forbids_anonymous();
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.banner = Some(reply.full_text().to_owned());
                        s.record.ftp_compliant = true;
                        // IIS and friends emit DOS listings; seed the hint.
                        if parsed.software().family
                            == ftp_proto::SoftwareFamily::MicrosoftFtp
                        {
                            s.listing_hint = ListingFormat::Dos;
                        }
                    }
                    if forbids {
                        if let Some(s) = self.sessions[slot].as_mut() {
                            s.record.login = LoginOutcome::SkippedBannerForbids;
                        }
                        self.begin_tls(ctx, slot);
                    } else if !self.queue_cmd(
                        ctx,
                        slot,
                        Cmd::Fixed("USER anonymous"),
                        Phase::User,
                    ) {
                        self.begin_quit(ctx, slot);
                    }
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::NotFtp;
                    }
                    self.finish(ctx, slot);
                }
            }
            Phase::User => {
                if code == 230 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Anonymous;
                    }
                    self.begin_post_login(ctx, slot);
                } else if code == 331 || code == 332 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.last_331_text.clear();
                        s.last_331_text.push_str(reply.full_text());
                    }
                    if !self.queue_cmd(ctx, slot, Cmd::Pass, Phase::Pass) {
                        self.begin_quit(ctx, slot);
                    }
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Denied;
                    }
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::Pass => {
                if code == 230 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Anonymous;
                    }
                    self.begin_post_login(ctx, slot);
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.login = LoginOutcome::Denied;
                        let hint = s.last_331_text.to_ascii_lowercase();
                        if hint.contains("encryption")
                            || hint.contains("tls")
                            || hint.contains("ftps")
                            || hint.contains("secure")
                        {
                            s.record.ftps.required_before_login = true;
                        }
                    }
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::RobotsPasv | Phase::TravPasv => {
                if code == 227 {
                    match HostPort::parse_pasv_reply(reply.text()) {
                        Ok(hp) => {
                            if let Some(s) = self.sessions[slot].as_mut() {
                                if s.record.pasv_addr.is_none() {
                                    s.record.pasv_addr = Some(hp);
                                }
                            }
                            self.open_data_channel(ctx, slot, hp.port());
                        }
                        Err(_) => self.begin_extras(ctx, slot),
                    }
                } else {
                    // Server without working PASV: no traversal possible.
                    self.begin_extras(ctx, slot);
                }
            }
            Phase::RobotsRetr | Phase::TravList => {
                if preliminary {
                    // 150 — keep waiting.
                } else if code >= 400 {
                    self.transfer_complete(ctx, slot, false);
                } else {
                    let done = {
                        let Some(s) = self.sessions[slot].as_mut() else { return };
                        s.got_final_reply = true;
                        s.data_closed || s.data_conn.is_none()
                    };
                    if done {
                        self.transfer_complete(ctx, slot, true);
                    }
                }
            }
            Phase::Syst => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    if code == 215 {
                        s.record.syst = Some(reply.full_text().to_owned());
                    }
                }
                if !self.queue_cmd(ctx, slot, Cmd::Fixed("HELP"), Phase::Help) {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::Help => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    if code == 214 || code == 211 {
                        s.record.help = Some(reply.full_text().to_owned());
                    }
                }
                if !self.queue_cmd(ctx, slot, Cmd::Fixed("FEAT"), Phase::Feat) {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::Feat => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    // A FEAT body is "211-Features:" / one line per
                    // feature / "211 End": keep only the interior lines.
                    let n = reply.line_count();
                    if code == 211 && n > 2 {
                        s.record.feat =
                            reply.lines().skip(1).take(n - 2).map(str::to_owned).collect();
                    }
                }
                if !self.queue_cmd(ctx, slot, Cmd::Fixed("SITE HELP"), Phase::Site) {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::Site => {
                if let Some(s) = self.sessions[slot].as_mut() {
                    if code < 300 {
                        s.record.site = Some(reply.full_text().to_owned());
                    }
                }
                self.begin_port_probe_or_tls(ctx, slot);
            }
            Phase::PortProbe => {
                if code == 200 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.port_accepts_third_party = Some(true);
                    }
                    // Trigger the actual bounce so the collector can
                    // confirm the connection.
                    if !self.queue_cmd(ctx, slot, Cmd::Fixed("LIST /"), Phase::PortList) {
                        self.begin_tls(ctx, slot);
                    }
                } else {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.port_accepts_third_party = Some(false);
                    }
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::PortList => {
                if !preliminary {
                    self.begin_tls(ctx, slot);
                }
            }
            Phase::AuthTls => {
                if code == 234 {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.ftps.supported = true;
                        if let Some(c) = s.control {
                            self.send_buf.clear();
                            self.send_buf.extend_from_slice(simtls::CLIENT_HELLO.as_bytes());
                            self.send_buf.extend_from_slice(b"\r\n");
                            ctx.send(c, &self.send_buf);
                        }
                        s.phase = Phase::TlsHello;
                        obs::journal!(s.ip, obs::JournalEvent::Phase {
                            phase: Phase::TlsHello.label(),
                        });
                        let gen = s.gen;
                        let timeout = self.cfg.step_timeout;
                        ctx.set_timer(timeout, token(slot, gen, KIND_TIMEOUT));
                    }
                } else {
                    self.begin_quit(ctx, slot);
                }
            }
            Phase::TlsHello => { /* cert arrives as a SIMTLS line, not a reply */ }
            Phase::Quit => {
                self.finish(ctx, slot);
            }
            Phase::Done => {}
        }
    }

    fn on_control_line(&mut self, ctx: &mut Ctx<'_>, slot: usize, line: &str) {
        // Simulated-TLS certificate line.
        if line.starts_with('\u{1}') {
            let in_hello = self.sessions[slot]
                .as_ref()
                .map(|s| s.phase == Phase::TlsHello)
                .unwrap_or(false);
            if in_hello {
                if let Some(cert) = SimCertificate::parse_server_hello(line) {
                    if let Some(s) = self.sessions[slot].as_mut() {
                        s.record.ftps.cert = Some(cert);
                        s.bump();
                    }
                }
                self.begin_quit(ctx, slot);
            }
            return;
        }
        // Accumulate in the reused buffer and dispatch a borrow. The
        // buffer is taken out for the duration of the dispatch (the
        // reply borrows it while `self` is re-borrowed mutably) and
        // handed back afterwards — unless the session finished and the
        // slot was re-occupied by a different host.
        let (owner_ip, mut rb) = {
            let Some(s) = self.sessions[slot].as_mut() else { return };
            (s.ip, std::mem::take(&mut s.reply))
        };
        match rb.push_line(line) {
            Ok(Some(reply)) => self.on_reply(ctx, slot, reply),
            Ok(None) => {}
            Err(_) => {
                // Garbage on the control channel: not an FTP server (or
                // one broken beyond use).
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.faults.garbage_lines += 1;
                    s.record.gave_up = Some(GaveUpReason::ControlGarbage);
                    if s.phase == Phase::Banner {
                        s.record.login = LoginOutcome::NotFtp;
                    }
                }
                self.finish(ctx, slot);
            }
        }
        if let Some(Some(s)) = self.sessions.get_mut(slot) {
            if s.ip == owner_ip {
                s.reply = rb;
            }
        }
    }
}

impl Endpoint for Enumerator {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, t: u64) {
        if t == 0 {
            // Kick-off timer from the orchestrator.
            self.start_next(ctx);
            return;
        }
        let (slot, gen, kind) = untoken(t);
        let Some(Some(s)) = self.sessions.get(slot) else { return };
        // The deadline timer is pinned to the session's *starting*
        // generation; every other timer must match the current one.
        let expected = if kind == KIND_DEADLINE { s.start_gen } else { s.gen };
        if expected != gen {
            return; // stale timer
        }
        match kind {
            KIND_SEND => self.send_pending(ctx, slot),
            KIND_TIMEOUT => {
                // The step stalled: give up and keep the partial record.
                if obs::enabled() {
                    obs::counter(obs::Counter::StepTimeouts, 1);
                }
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.faults.step_timeouts += 1;
                    s.record.gave_up = Some(GaveUpReason::StepTimeout);
                }
                self.finish(ctx, slot);
            }
            KIND_RETRY => self.retry_connect(ctx, slot),
            KIND_DEADLINE => {
                // Whole-session backstop: no single host, however
                // hostile, may hold its slot past this bound.
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.record.gave_up = Some(GaveUpReason::SessionDeadline);
                }
                self.finish(ctx, slot);
            }
            _ => {}
        }
    }

    fn on_outbound(&mut self, ctx: &mut Ctx<'_>, t: u64, result: Result<ConnId, ConnectError>) {
        let (slot, gen, kind) = untoken(t);
        let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
        if s.gen != gen {
            // Stale connect (session moved on); close if it succeeded.
            if let Ok(conn) = result {
                ctx.close(conn);
            }
            return;
        }
        match (kind, result) {
            (KIND_CONTROL, Ok(conn)) => {
                s.control = Some(conn);
                s.phase = Phase::Banner;
                obs::journal!(s.ip, obs::JournalEvent::Phase { phase: Phase::Banner.label() });
                self.conns.insert(conn, (slot, false));
                let timeout = self.cfg.step_timeout;
                let gen = s.gen;
                ctx.set_timer(timeout, token(slot, gen, KIND_TIMEOUT));
            }
            (KIND_CONTROL, Err(_)) => {
                // Lost SYN or refused connect: retry on the backoff
                // schedule until the budget runs out.
                if obs::enabled() {
                    obs::counter(obs::Counter::ConnectFailures, 1);
                }
                let retries_used = s.record.faults.connect_retries;
                if let Some(delay) = self.cfg.retry.delay_for(retries_used) {
                    s.record.faults.connect_retries += 1;
                    if obs::enabled() {
                        obs::counter(obs::Counter::ConnectRetries, 1);
                        obs::counter(obs::Counter::BackoffWaitUs, delay.as_micros());
                        obs::event!(
                            "enum.retry",
                            ip = s.ip,
                            attempt = s.record.faults.connect_retries,
                            backoff_us = delay.as_micros(),
                        );
                    }
                    obs::journal!(s.ip, obs::JournalEvent::Retry {
                        attempt: s.record.faults.connect_retries,
                        backoff_us: delay.as_micros(),
                    });
                    let gen = s.bump();
                    ctx.set_timer(delay, token(slot, gen, KIND_RETRY));
                } else {
                    s.record.login = LoginOutcome::Aborted;
                    s.record.gave_up = Some(GaveUpReason::ConnectFailed);
                    self.finish(ctx, slot);
                }
            }
            (KIND_DATA, Ok(conn)) => {
                s.data_conn = Some(conn);
                s.awaiting_data_connect = false;
                self.conns.insert(conn, (slot, true));
                // Data channel up: issue the transfer command.
                let phase = s.phase;
                match phase {
                    Phase::RobotsPasv
                        if !self.queue_cmd(
                            ctx,
                            slot,
                            Cmd::Fixed("RETR robots.txt"),
                            Phase::RobotsRetr,
                        ) => {
                            self.begin_extras(ctx, slot);
                        }
                    Phase::TravPasv
                        if !self.queue_cmd(ctx, slot, Cmd::ListCurDir, Phase::TravList) =>
                    {
                        if let Some(s) = self.sessions[slot].as_mut() {
                            s.record.truncated = true;
                        }
                        self.begin_extras(ctx, slot);
                    }
                    _ => {}
                }
            }
            (KIND_DATA, Err(_)) => {
                if obs::enabled() {
                    obs::counter(obs::Counter::ConnectFailures, 1);
                }
                s.record.faults.data_conn_failures += 1;
                s.awaiting_data_connect = false;
                // No data channel: skip whatever needed it.
                let phase = s.phase;
                match phase {
                    Phase::RobotsPasv => self.begin_traversal(ctx, slot),
                    Phase::TravPasv => self.begin_extras(ctx, slot),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let Some(&(slot, is_data)) = self.conns.get(&conn) else { return };
        if is_data {
            if obs::enabled() {
                obs::counter(obs::Counter::ListingBytes, data.len() as u64);
            }
            if let Some(Some(s)) = self.sessions.get_mut(slot) {
                obs::journal!(s.ip, obs::JournalEvent::DataBytes { n: data.len() as u64 });
                s.data_buf.extend_from_slice(data);
            }
            return;
        }
        // Control data: feed the codec, then dispatch each line as a
        // borrow of its buffer — no per-line String. The batch must be
        // fully framed before any line is dispatched (a hostile over-long
        // line aborts the whole batch); the codec only errors on an
        // unterminated tail past MAX_LINE, which is checkable up front.
        let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
        s.codec.extend(data);
        let overlong = s.codec.unterminated_tail_len() > ftp_proto::codec::MAX_LINE;
        if overlong {
            s.record.faults.overlong_lines += 1;
            s.record.gave_up = Some(GaveUpReason::OverlongLine);
            if s.phase == Phase::Banner {
                s.record.login = LoginOutcome::NotFtp;
            }
        }
        let owner_ip = s.ip;
        if overlong {
            self.finish(ctx, slot);
            return;
        }
        loop {
            // The codec is taken out for the dispatch (the line borrows
            // it while `self` is re-borrowed) and handed back after.
            // A session that finished mid-loop may leave the slot empty
            // or re-occupied by a *different* host's session; leftover
            // lines belong to the dead session — never leak them.
            let mut codec = {
                let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
                if s.ip != owner_ip {
                    return;
                }
                std::mem::take(&mut s.codec)
            };
            match codec.next_line_str() {
                Ok(Some(line)) => self.on_control_line(ctx, slot, line),
                Ok(None) => {
                    if let Some(Some(s)) = self.sessions.get_mut(slot) {
                        if s.ip == owner_ip {
                            s.codec = codec;
                        }
                    }
                    return;
                }
                Err(_) => {
                    // Unreachable given the tail pre-check above; kept
                    // for defense in depth.
                    if let Some(Some(s)) = self.sessions.get_mut(slot) {
                        if s.ip == owner_ip {
                            s.record.faults.overlong_lines += 1;
                            s.record.gave_up = Some(GaveUpReason::OverlongLine);
                            if s.phase == Phase::Banner {
                                s.record.login = LoginOutcome::NotFtp;
                            }
                        }
                    }
                    self.finish(ctx, slot);
                    return;
                }
            }
            if let Some(Some(s)) = self.sessions.get_mut(slot) {
                if s.ip == owner_ip {
                    s.codec = codec;
                    continue;
                }
            }
            return;
        }
    }

    fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let Some((slot, is_data)) = self.conns.remove(&conn) else { return };
        if is_data {
            let done = {
                let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
                if s.data_conn == Some(conn) {
                    s.data_conn = None;
                }
                s.data_closed = true;
                s.got_final_reply
                    && matches!(s.phase, Phase::RobotsRetr | Phase::TravList)
            };
            if done {
                self.transfer_complete(ctx, slot, true);
            }
            return;
        }
        // Control closed by the server: explicit refusal of service.
        let Some(Some(s)) = self.sessions.get_mut(slot) else { return };
        s.control = None;
        if s.phase != Phase::Quit && s.phase != Phase::Done {
            s.record.server_terminated = true;
        }
        self.finish(ctx, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        for (slot, gen, kind) in [(0usize, 0u32, 0u64), (5, 1000, 3), (65_000, 0xff_ffff, 1)] {
            let t = token(slot, gen, kind);
            assert_eq!(untoken(t), (slot, gen, kind));
        }
    }

    // Compile-time guard: the wrap-up reserve must be non-zero.
    const _: () = assert!(RESERVED_REQUESTS > 0);

    // Compile-time guard: the per-reply phase read must stay a plain
    // load (the zero-alloc session loop depends on it).
    const _: () = {
        const fn assert_copy<T: Copy>() {}
        assert_copy::<Phase>();
    };
}
