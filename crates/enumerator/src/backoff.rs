//! Bounded exponential backoff for connection retries.
//!
//! The paper's enumerator could not afford to give up on a host after
//! one lost SYN, nor to retry forever against a blackhole (§III). This
//! schedule encodes the compromise: a fixed number of retries whose
//! delays double from `base` up to `cap`, so the worst-case time spent
//! on a dead host is a small, computable constant.

use netsim::SimDuration;

/// An exponential-backoff retry policy.
///
/// Retry `k` (zero-based) waits `min(base * 2^k, cap)`; after
/// `max_retries` failures the caller must give up. Delays are therefore
/// monotone non-decreasing and the total time added by the schedule is
/// bounded by [`RetrySchedule::worst_case_total`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySchedule {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Retries permitted after the initial attempt (0 = fail fast).
    pub max_retries: u32,
}

impl Default for RetrySchedule {
    /// Two retries at 1 s and 2 s — cheap enough to run against every
    /// silent host, persistent enough to ride out a single lost SYN.
    fn default() -> Self {
        RetrySchedule {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(8),
            max_retries: 2,
        }
    }
}

impl RetrySchedule {
    /// A schedule that never retries.
    pub fn none() -> Self {
        RetrySchedule { max_retries: 0, ..RetrySchedule::default() }
    }

    /// Delay before retry number `retry` (zero-based), or `None` once
    /// the retry budget is spent.
    pub fn delay_for(&self, retry: u32) -> Option<SimDuration> {
        if retry >= self.max_retries {
            return None;
        }
        // 2^retry, saturating well before u64 overflow.
        let factor = 1u64 << retry.min(32);
        Some(self.base.saturating_mul(factor).min(self.cap))
    }

    /// Total attempts a caller may make: the initial one plus retries.
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }

    /// Sum of every delay the schedule can impose — the extra time a
    /// completely dead host can cost beyond the connect timeouts.
    pub fn worst_case_total(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for k in 0..self.max_retries {
            if let Some(d) = self.delay_for(k) {
                total = total + d;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_are_bounded() {
        let s = RetrySchedule::default();
        let mut granted = 0;
        for k in 0..1_000 {
            if s.delay_for(k).is_some() {
                granted += 1;
            }
        }
        assert_eq!(granted, s.max_retries);
        assert_eq!(s.max_attempts(), s.max_retries + 1);
        assert_eq!(RetrySchedule::none().delay_for(0), None);
    }

    #[test]
    fn delays_are_monotone_nondecreasing_and_capped() {
        let s = RetrySchedule {
            base: SimDuration::from_millis(250),
            cap: SimDuration::from_secs(4),
            max_retries: 10,
        };
        let mut prev = SimDuration::ZERO;
        for k in 0..s.max_retries {
            let d = s.delay_for(k).expect("within budget");
            assert!(d >= prev, "delay shrank at retry {k}");
            assert!(d <= s.cap, "delay exceeded cap at retry {k}");
            prev = d;
        }
        // The cap is actually reached (250ms * 2^4 = 4s).
        assert_eq!(s.delay_for(9), Some(s.cap));
    }

    #[test]
    fn huge_retry_indices_do_not_overflow() {
        let s = RetrySchedule {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(30),
            max_retries: u32::MAX,
        };
        assert_eq!(s.delay_for(63), Some(s.cap));
        assert_eq!(s.delay_for(u32::MAX - 1), Some(s.cap));
    }

    #[test]
    fn worst_case_total_matches_sum() {
        let s = RetrySchedule::default();
        let expected = SimDuration::from_secs(1) + SimDuration::from_secs(2);
        assert_eq!(s.worst_case_total(), expected);
        assert_eq!(RetrySchedule::none().worst_case_total(), SimDuration::ZERO);
    }
}
