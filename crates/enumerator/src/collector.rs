//! The bounce collector: a listener on an address the study controls.
//!
//! For the §VII-B `PORT`-validation experiment, the enumerator sends
//! each server a `PORT` naming this collector. A server that fails to
//! validate the argument will open a data connection *to us* — each such
//! connection is recorded here, keyed by the server's address. The join
//! of "server replied 200 to the bogus PORT" and "collector saw a
//! connection from that server" is the paper's confirmation signal.

use netsim::{ConnId, Ctx, Endpoint};
use std::cell::RefCell;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Shared record of which servers connected to the collector.
pub type BounceHits = Rc<RefCell<HashSet<Ipv4Addr>>>;

/// Endpoint that accepts anything and records the peer address.
#[derive(Debug, Default)]
pub struct BounceCollector {
    hits: BounceHits,
}

impl BounceCollector {
    /// Creates a collector and a shared handle to its hit set.
    pub fn new() -> (Self, BounceHits) {
        let hits: BounceHits = Rc::new(RefCell::new(HashSet::new()));
        (BounceCollector { hits: hits.clone() }, hits)
    }
}

impl Endpoint for BounceCollector {
    fn on_inbound(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _local_port: u16) {
        if let Some((ip, _)) = ctx.peer_of(conn) {
            self.hits.borrow_mut().insert(ip);
        }
        // Accept whatever the server sends, then let it close.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{SimDuration, Simulator};

    struct Dialer;
    impl Endpoint for Dialer {
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            ctx.connect(Ipv4Addr::new(5, 5, 5, 5), Ipv4Addr::new(9, 9, 9, 9), 1025, 0);
        }
    }

    #[test]
    fn records_peer_addresses() {
        let mut sim = Simulator::new(1);
        let (collector, hits) = BounceCollector::new();
        let cid = sim.register_endpoint(Box::new(collector));
        sim.bind(Ipv4Addr::new(9, 9, 9, 9), 1025, cid);
        let did = sim.register_endpoint(Box::new(Dialer));
        sim.schedule_timer(did, SimDuration::ZERO, 0);
        sim.run();
        assert!(hits.borrow().contains(&Ipv4Addr::new(5, 5, 5, 5)));
        assert_eq!(hits.borrow().len(), 1);
    }
}
