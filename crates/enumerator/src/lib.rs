//! The FTP enumerator — the paper's primary engineering contribution,
//! re-implemented in Rust against the network simulator.
//!
//! Given a list of responsive hosts (from `zscan`), the enumerator runs
//! one robust, quirk-tolerant FTP session per host:
//!
//! 1. connect and collect the banner (bailing out on non-FTP services);
//! 2. check the banner for "no anonymous access" statements and, unless
//!    present, attempt an RFC 1635 anonymous login with the team's abuse
//!    address as password;
//! 3. fetch and honor `robots.txt` (Google semantics);
//! 4. traverse the visible directory tree **breadth-first**, under a
//!    per-connection request cap (500 in the paper) and a per-host rate
//!    limit (two requests per second);
//! 5. collect `HELP`, `FEAT`, `SITE`, and `SYST` output;
//! 6. optionally probe `PORT` validation against a collector address the
//!    study controls (§VII-B);
//! 7. attempt `AUTH TLS` to harvest the server certificate regardless of
//!    whether anonymous access succeeded (§IX);
//! 8. `QUIT`.
//!
//! A server closing the connection at any point is treated as an
//! explicit refusal of service and the session ends immediately — the
//! paper's ethics stance (§III-A).
//!
//! Sessions are chaos-hardened (§III, DESIGN.md "Fault model"):
//! connects retry on a bounded exponential [`backoff::RetrySchedule`],
//! every step and every whole session is deadline-bounded, and hosts
//! that defeat the enumerator produce partial records tagged with a
//! [`record::GaveUpReason`] plus per-session [`record::FaultStats`]
//! rather than hanging or poisoning the run.
//!
//! Results are [`record::HostRecord`]s: everything the analysis crate
//! consumes. The enumerator never issues a write command; this is
//! enforced structurally (there is no code path that sends `STOR`,
//! `DELE`, `MKD`, or `RNFR`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod backoff;
pub mod client;
pub mod collector;
pub mod config;
pub mod record;

pub use backoff::RetrySchedule;
pub use client::Enumerator;
pub use collector::BounceCollector;
pub use config::{EnumConfig, TraversalOrder};
pub use record::{
    FaultStats, FileEntry, FileEntryRef, FileTable, FileTableIter, FtpsObservation, GaveUpReason,
    HostRecord, LoginOutcome, RobotsInfo, RunSummary,
};
