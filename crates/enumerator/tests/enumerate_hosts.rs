//! End-to-end enumeration tests: the enumerator against simulated
//! servers built from ftpd profiles.

use enumerator::{BounceCollector, EnumConfig, Enumerator, HostRecord, LoginOutcome};
use ftp_proto::HostPort;
use ftpd::misc::{RawBannerService, SilentService};
use ftpd::profile::{AnonPolicy, ServerProfile};
use ftpd::FtpServerEngine;
use netsim::{SimDuration, Simulator};
use simtls::SimCertificate;
use simvfs::{FileMeta, Vfs};
use std::net::Ipv4Addr;

const SCANNER: Ipv4Addr = Ipv4Addr::new(198, 108, 0, 1);

fn sample_vfs() -> Vfs {
    let mut v = Vfs::new();
    v.add_file("/pub/readme.txt", FileMeta::public(11).with_content("hello world")).unwrap();
    v.add_file("/pub/photos/DSC_0001.JPG", FileMeta::public(2_400_000)).unwrap();
    v.add_file("/backup/finances.qdf", FileMeta::public(88_000)).unwrap();
    v.add_file("/etc/shadow", FileMeta::private(718)).unwrap();
    v
}

fn anon_profile() -> ServerProfile {
    ServerProfile::new("ProFTPD 1.3.5 Server (Debian)").with_anonymous(AnonPolicy::Allowed)
}

/// Spins up `servers` (ip, profile, vfs), enumerates them, and returns
/// the records sorted by IP.
fn enumerate(
    servers: Vec<(Ipv4Addr, ServerProfile, Vfs)>,
    tweak: impl FnOnce(EnumConfig) -> EnumConfig,
) -> Vec<HostRecord> {
    let mut sim = Simulator::new(99);
    let mut targets = Vec::new();
    for (ip, profile, vfs) in servers {
        let id = sim.register_endpoint(Box::new(FtpServerEngine::new(ip, profile, vfs)));
        sim.bind(ip, 21, id);
        targets.push(ip);
    }
    let cfg = tweak(EnumConfig::new(SCANNER));
    let (en, results) = Enumerator::new(cfg, targets);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let mut out = results.borrow().clone();
    out.sort_by_key(|r| r.ip);
    out
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(100, 64, 0, n)
}

#[test]
fn enumerates_anonymous_server_fully() {
    let records = enumerate(vec![(ip(1), anon_profile(), sample_vfs())], |c| c);
    assert_eq!(records.len(), 1);
    let r = &records[0];
    assert!(r.ftp_compliant);
    assert_eq!(r.login, LoginOutcome::Anonymous);
    assert!(r.banner.as_deref().unwrap().contains("ProFTPD"));
    let paths: Vec<&str> = r.files.iter().map(|f| f.path).collect();
    assert!(paths.contains(&"/pub"), "{paths:?}");
    assert!(paths.contains(&"/pub/readme.txt"), "{paths:?}");
    assert!(paths.contains(&"/pub/photos/DSC_0001.JPG"), "{paths:?}");
    assert!(paths.contains(&"/backup/finances.qdf"), "{paths:?}");
    assert!(paths.contains(&"/etc/shadow"), "{paths:?}");
    assert!(r.exposes_data());
    assert!(!r.truncated);
    assert!(!r.server_terminated);
    // SYST/HELP/FEAT collected.
    assert!(r.syst.is_some());
    assert!(r.help.is_some());
    assert!(!r.feat.is_empty());
    // robots.txt absent.
    assert!(!r.robots.present);
    // Readability captured from permissions.
    let shadow = r.files.iter().find(|f| f.path == "/etc/shadow").unwrap();
    assert_eq!(shadow.readability, ftp_proto::listing::Readability::NonReadable);
}

#[test]
fn respects_robots_deny_all() {
    let mut v = sample_vfs();
    v.add_file(
        "/robots.txt",
        FileMeta::public(0).with_content("User-agent: *\nDisallow: /\n"),
    )
    .unwrap();
    let records = enumerate(vec![(ip(1), anon_profile(), v)], |c| c);
    let r = &records[0];
    assert!(r.robots.present);
    assert!(r.robots.denies_all);
    assert!(r.files.is_empty(), "no traversal at all: {:?}", r.files);
}

#[test]
fn respects_robots_partial_exclusion() {
    let mut v = sample_vfs();
    v.add_file(
        "/robots.txt",
        FileMeta::public(0).with_content("User-agent: *\nDisallow: /backup/\n"),
    )
    .unwrap();
    let records = enumerate(vec![(ip(1), anon_profile(), v)], |c| c);
    let r = &records[0];
    assert!(r.robots.present);
    assert!(!r.robots.denies_all);
    let paths: Vec<&str> = r.files.iter().map(|f| f.path).collect();
    assert!(paths.contains(&"/pub/readme.txt"));
    // The /backup dir entry is listed (it appears in /'s listing) but its
    // contents are never traversed.
    assert!(paths.contains(&"/backup"));
    assert!(!paths.contains(&"/backup/finances.qdf"), "{paths:?}");
}

#[test]
fn ignores_robots_when_configured() {
    let mut v = sample_vfs();
    v.add_file(
        "/robots.txt",
        FileMeta::public(0).with_content("User-agent: *\nDisallow: /\n"),
    )
    .unwrap();
    let records = enumerate(vec![(ip(1), anon_profile(), v)], |mut c| {
        c.respect_robots = false;
        c
    });
    let r = &records[0];
    assert!(r.robots.denies_all, "still recorded");
    assert!(!r.files.is_empty(), "traversed anyway (ablation mode)");
}

#[test]
fn denied_server_recorded_and_cert_still_collected() {
    let cert = SimCertificate::self_signed("localhost", 3);
    let profile = ServerProfile::new("Private corp FTP").with_ftps(cert.clone(), false);
    let records = enumerate(vec![(ip(1), profile, Vfs::new())], |c| c);
    let r = &records[0];
    assert_eq!(r.login, LoginOutcome::Denied);
    assert!(r.files.is_empty());
    assert!(r.ftps.supported);
    assert_eq!(r.ftps.cert.as_ref(), Some(&cert));
}

#[test]
fn banner_forbidding_anonymous_skips_login() {
    let profile = ServerProfile::new("No anonymous access allowed; authorized users only")
        .with_anonymous(AnonPolicy::Allowed);
    let records = enumerate(vec![(ip(1), profile, sample_vfs())], |c| c);
    let r = &records[0];
    assert_eq!(r.login, LoginOutcome::SkippedBannerForbids);
    assert!(r.files.is_empty(), "never even tried USER");
}

#[test]
fn non_ftp_banner_marks_not_ftp() {
    let mut sim = Simulator::new(7);
    let sid = sim.register_endpoint(Box::new(RawBannerService::new("SSH-2.0-OpenSSH_5.3")));
    sim.bind(ip(1), 21, sid);
    let (en, results) = Enumerator::new(EnumConfig::new(SCANNER), vec![ip(1)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let r = &results.borrow()[0];
    assert_eq!(r.login, LoginOutcome::NotFtp);
    assert!(!r.ftp_compliant);
}

#[test]
fn silent_service_times_out_as_not_ftp() {
    let mut sim = Simulator::new(7);
    let sid = sim.register_endpoint(Box::new(SilentService));
    sim.bind(ip(1), 21, sid);
    let (en, results) = Enumerator::new(EnumConfig::new(SCANNER), vec![ip(1)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let r = &results.borrow()[0];
    assert!(!r.ftp_compliant);
    assert_ne!(r.login, LoginOutcome::Anonymous);
}

#[test]
fn missing_host_aborts() {
    let mut sim = Simulator::new(7);
    let (en, results) = Enumerator::new(EnumConfig::new(SCANNER), vec![ip(1)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let r = &results.borrow()[0];
    assert_eq!(r.login, LoginOutcome::Aborted);
}

#[test]
fn request_cap_truncates_traversal() {
    // Build a wide tree needing far more than the cap.
    let mut v = Vfs::new();
    for d in 0..40 {
        for f in 0..3 {
            v.add_file(&format!("/d{d:02}/file{f}"), FileMeta::public(10)).unwrap();
        }
    }
    let records = enumerate(vec![(ip(1), anon_profile(), v)], |c| c.with_request_cap(30));
    let r = &records[0];
    assert!(r.truncated, "cap 30 cannot finish 40 dirs");
    assert!(r.requests_used <= 30);
    assert!(!r.files.is_empty(), "partial results retained");
    // Wrap-up still ran within the reserve.
    assert!(r.syst.is_some());
}

#[test]
fn port_probe_distinguishes_validating_servers() {
    let collector_ip = Ipv4Addr::new(198, 108, 0, 9);
    let collector_hp = HostPort::new(collector_ip, 2121);

    let mut sim = Simulator::new(31);
    let vulnerable = anon_profile().without_port_validation();
    let sid1 = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(1), vulnerable, sample_vfs())));
    sim.bind(ip(1), 21, sid1);
    let validating = anon_profile();
    let sid2 = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(2), validating, sample_vfs())));
    sim.bind(ip(2), 21, sid2);

    let (collector, hits) = BounceCollector::new();
    let cid = sim.register_endpoint(Box::new(collector));
    sim.bind(collector_ip, 2121, cid);

    let cfg = EnumConfig::new(SCANNER).with_bounce_probe(collector_hp);
    let (en, results) = Enumerator::new(cfg, vec![ip(1), ip(2)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();

    let mut records = results.borrow().clone();
    records.sort_by_key(|r| r.ip);
    assert_eq!(records[0].port_accepts_third_party, Some(true), "vulnerable");
    assert_eq!(records[1].port_accepts_third_party, Some(false), "validating");
    assert!(hits.borrow().contains(&ip(1)), "collector saw the bounce");
    assert!(!hits.borrow().contains(&ip(2)));
}

#[test]
fn nat_leak_shows_in_pasv_addr() {
    let mut sim = Simulator::new(31);
    let profile = anon_profile().with_nat_leak();
    let sid = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(1), profile, sample_vfs())));
    sim.bind(ip(1), 21, sid);
    sim.set_internal_ip(ip(1), Ipv4Addr::new(192, 168, 1, 50));
    let (en, results) = Enumerator::new(EnumConfig::new(SCANNER), vec![ip(1)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let r = &results.borrow()[0];
    let pasv = r.pasv_addr.expect("PASV observed");
    assert_eq!(pasv.ip(), Ipv4Addr::new(192, 168, 1, 50));
    assert!(r.exposes_data(), "traversal still worked via the real address");
}

#[test]
fn ftps_required_before_login_detected() {
    let cert = SimCertificate::browser_trusted("*.secure.example", "CA WildWest", 8);
    let profile = anon_profile().with_ftps(cert, true);
    let records = enumerate(vec![(ip(1), profile, sample_vfs())], |c| c);
    let r = &records[0];
    assert_eq!(r.login, LoginOutcome::Denied);
    assert!(r.ftps.required_before_login, "FTPS-required phrasing recognized");
    assert!(r.ftps.supported);
    assert!(r.ftps.cert.is_some());
}

#[test]
fn server_termination_recorded() {
    let profile = anon_profile().with_drop_after(5);
    let records = enumerate(vec![(ip(1), profile, sample_vfs())], |c| c);
    let r = &records[0];
    assert!(r.server_terminated);
}

#[test]
fn many_hosts_enumerate_concurrently() {
    let servers: Vec<_> = (1..=30u8)
        .map(|n| {
            let profile = if n % 3 == 0 {
                ServerProfile::new("Members only FTP")
            } else {
                anon_profile()
            };
            (ip(n), profile, sample_vfs())
        })
        .collect();
    let records = enumerate(servers, |c| c.with_concurrency(4));
    assert_eq!(records.len(), 30);
    let anon = records.iter().filter(|r| r.is_anonymous()).count();
    assert_eq!(anon, 20);
    let denied = records.iter().filter(|r| r.login == LoginOutcome::Denied).count();
    assert_eq!(denied, 10);
    // Every anonymous host yielded the same file set.
    for r in records.iter().filter(|r| r.is_anonymous()) {
        assert_eq!(r.file_count(), 4, "{:?}", r.ip);
    }
}

#[test]
fn dos_listing_servers_yield_unknown_readability() {
    let mut profile = ftpd::implementations::iis().with_anonymous(AnonPolicy::Allowed);
    profile.enforce_dir_perms = false;
    let records = enumerate(vec![(ip(1), profile, sample_vfs())], |c| c);
    let r = &records[0];
    assert!(r.is_anonymous());
    assert!(!r.files.is_empty());
    for f in &r.files {
        assert_eq!(
            f.readability,
            ftp_proto::listing::Readability::Unknown,
            "DOS listings expose no permissions: {f:?}"
        );
    }
}

#[test]
fn no_password_device_logs_in_at_user() {
    let profile =
        ServerProfile::new("NAS device FTP ready").with_anonymous(AnonPolicy::NoPassword);
    let records = enumerate(vec![(ip(1), profile, sample_vfs())], |c| c);
    assert_eq!(records[0].login, LoginOutcome::Anonymous);
}

#[test]
fn enumerator_never_writes() {
    // Structural guarantee plus behavioral check: a fully writable server
    // must end the run with an unchanged filesystem.
    let mut sim = Simulator::new(13);
    let profile = anon_profile().with_writable("/");
    let vfs = sample_vfs();
    let before = vfs.file_count();
    let engine = FtpServerEngine::new(ip(1), profile, vfs);
    let sid = sim.register_endpoint(Box::new(engine));
    sim.bind(ip(1), 21, sid);
    let (en, results) = Enumerator::new(EnumConfig::new(SCANNER), vec![ip(1)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    assert!(results.borrow()[0].is_anonymous());
    // Take the engine back to inspect the vfs.
    let engine = sim.take_endpoint(sid);
    // We can't downcast Box<dyn Endpoint>; instead assert via a second
    // enumeration that the file count is unchanged.
    drop(engine);
    let mut sim2 = Simulator::new(14);
    let profile2 = anon_profile().with_writable("/");
    let engine2 = FtpServerEngine::new(ip(1), profile2, sample_vfs());
    let sid2 = sim2.register_endpoint(Box::new(engine2));
    sim2.bind(ip(1), 21, sid2);
    let (en2, results2) = Enumerator::new(EnumConfig::new(SCANNER), vec![ip(1)]);
    let id2 = sim2.register_endpoint(Box::new(en2));
    sim2.schedule_timer(id2, SimDuration::ZERO, 0);
    sim2.run();
    let r = &results2.borrow()[0];
    let files_seen = r.file_count();
    assert_eq!(files_seen, before, "no uploads appeared during enumeration");
}

#[test]
fn strict_reply_ablation_loses_multiline_banner_hosts() {
    // A server whose banner is multiline: the hardened parser copes, the
    // strict one aborts.
    let mut profile = anon_profile();
    profile.banner = "Welcome to Example FTP\nMirror of ftp.example.org\nReady".to_owned();
    let records = enumerate(vec![(ip(1), profile.clone(), sample_vfs())], |c| c);
    assert_eq!(records[0].login, LoginOutcome::Anonymous, "hardened parser logs in");

    let records = enumerate(vec![(ip(1), profile, sample_vfs())], |mut c| {
        c.strict_replies = true;
        c
    });
    assert_ne!(records[0].login, LoginOutcome::Anonymous, "strict parser gives up");
}

#[test]
fn bfs_beats_dfs_on_breadth_coverage_under_cap() {
    use enumerator::TraversalOrder;
    // A wide tree with one deep spine: /spine/s1/s2/…/s12 plus 30 wide
    // top-level dirs. Under a tight cap, BFS samples the breadth while
    // DFS burns its budget down the spine.
    let mut v = Vfs::new();
    let mut spine = String::from("/zz-spine");
    for i in 0..12 {
        spine.push_str(&format!("/s{i}"));
        v.add_file(&format!("{spine}/deep{i}.txt"), FileMeta::public(1)).unwrap();
    }
    for d in 0..30 {
        v.add_file(&format!("/wide{d:02}/file.txt"), FileMeta::public(1)).unwrap();
    }

    let run_with = |order: TraversalOrder| {
        let records = enumerate(
            vec![(ip(1), anon_profile(), {
                let mut v2 = Vfs::new();
                let mut spine = String::from("/zz-spine");
                for i in 0..12 {
                    spine.push_str(&format!("/s{i}"));
                    v2.add_file(&format!("{spine}/deep{i}.txt"), FileMeta::public(1)).unwrap();
                }
                for d in 0..30 {
                    v2.add_file(&format!("/wide{d:02}/file.txt"), FileMeta::public(1)).unwrap();
                }
                v2
            })],
            |c| c.with_request_cap(40).with_traversal(order),
        );
        records[0].clone()
    };
    let _ = v;

    let bfs = run_with(TraversalOrder::BreadthFirst);
    let dfs = run_with(TraversalOrder::DepthFirst);
    assert!(bfs.truncated && dfs.truncated, "cap must bind in both runs");

    let top_dirs = |r: &enumerator::HostRecord| {
        r.files
            .iter()
            .filter(|f| f.is_dir && f.path.starts_with("/wide"))
            .count()
    };
    let max_depth = |r: &enumerator::HostRecord| {
        r.files.iter().map(|f| f.path.matches('/').count()).max().unwrap_or(0)
    };
    assert!(
        max_depth(&dfs) > max_depth(&bfs),
        "DFS goes deeper: {} vs {}",
        max_depth(&dfs),
        max_depth(&bfs)
    );
    // Both list "/" so both see the wide dir *entries*; the difference
    // is whose *contents* get listed. Compare listed wide files.
    let wide_files = |r: &enumerator::HostRecord| {
        r.files.iter().filter(|f| !f.is_dir && f.path.starts_with("/wide")).count()
    };
    assert!(
        wide_files(&bfs) > wide_files(&dfs),
        "BFS covers more breadth: {} vs {}",
        wide_files(&bfs),
        wide_files(&dfs)
    );
    assert_eq!(top_dirs(&bfs), 30, "BFS lists every top-level dir entry");
}
