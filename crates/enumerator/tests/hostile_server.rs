//! Robustness: the enumerator against hostile or broken servers.
//!
//! The paper's tool had to survive "oddities found in the wild" (§III);
//! the strongest form of that requirement is surviving *adversarial*
//! servers: random reply garbage, reply floods, half-open behavior, and
//! abrupt resets — without panicking, leaking sessions, or stalling the
//! rest of the scan.

use enumerator::{EnumConfig, Enumerator};
use ftpd::profile::{AnonPolicy, ServerProfile};
use ftpd::FtpServerEngine;
use netsim::{ConnId, Ctx, Endpoint, SimDuration, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvfs::{FileMeta, Vfs};
use std::net::Ipv4Addr;

const SCANNER: Ipv4Addr = Ipv4Addr::new(198, 108, 0, 1);

/// A server that answers every line with seeded garbage and sometimes
/// hangs up.
struct HostileServer {
    seed: u64,
}

impl HostileServer {
    fn garbage(&self, salt: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt);
        let style = rng.random_range(0..5u8);
        match style {
            0 => b"220 welcome\r\n".to_vec(), // plausible then nothing
            1 => {
                // Random printable noise with stray CRLFs.
                let mut v = Vec::new();
                for _ in 0..rng.random_range(1..120) {
                    v.push(rng.random_range(0x20..0x7f));
                }
                v.extend_from_slice(b"\r\n");
                v
            }
            2 => {
                // Reply-code soup: valid-looking codes with junk text.
                format!("{} {:x}\r\n", rng.random_range(100..700), rng.random::<u64>())
                    .into_bytes()
            }
            3 => {
                // A never-terminated multiline reply.
                b"230-never finishes\r\n part two\r\n".to_vec()
            }
            _ => {
                // Binary noise, no line terminator.
                (0..rng.random_range(1..200)).map(|_| rng.random()).collect()
            }
        }
    }
}

impl Endpoint for HostileServer {
    fn on_inbound(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _port: u16) {
        let g = self.garbage(1);
        ctx.send(conn, &g);
    }
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let g = self.garbage(data.len() as u64 + 2);
        ctx.send(conn, &g);
        if data.len().is_multiple_of(7) {
            ctx.close(conn);
        }
    }
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(100, 64, 1, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A mixed population of hostile and honest servers: the enumerator
    /// finishes every session, the honest hosts are fully enumerated,
    /// and no session wedges the scan.
    #[test]
    fn enumerator_survives_hostile_servers(seed in any::<u64>()) {
        let mut sim = Simulator::new(5);
        let mut targets = Vec::new();
        // Five hostile servers.
        for n in 1..=5u8 {
            let id = sim.register_endpoint(Box::new(HostileServer { seed: seed ^ n as u64 }));
            sim.bind(ip(n), 21, id);
            targets.push(ip(n));
        }
        // Two honest ones interleaved.
        for n in 6..=7u8 {
            let mut vfs = Vfs::new();
            vfs.add_file("/pub/data.txt", FileMeta::public(3).with_content("ok")).unwrap();
            let profile =
                ServerProfile::new("ProFTPD 1.3.5 Server").with_anonymous(AnonPolicy::Allowed);
            let id = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(n), profile, vfs)));
            sim.bind(ip(n), 21, id);
            targets.push(ip(n));
        }
        let mut cfg = EnumConfig::new(SCANNER).with_concurrency(3);
        cfg.step_timeout = SimDuration::from_secs(5);
        cfg.request_gap = SimDuration::from_millis(5);
        let (en, results) = Enumerator::new(cfg, targets);
        let id = sim.register_endpoint(Box::new(en));
        sim.schedule_timer(id, SimDuration::ZERO, 0);
        sim.run();

        let records = results.borrow();
        prop_assert_eq!(records.len(), 7, "every target produced a record");
        // Honest servers enumerated completely despite the hostile noise.
        for n in 6..=7u8 {
            let r = records.iter().find(|r| r.ip == ip(n)).expect("record");
            prop_assert!(r.is_anonymous(), "honest host lost: {:?}", r.login);
            prop_assert!(r.files.iter().any(|f| f.path == "/pub/data.txt"));
        }
        // No hostile server was ever recorded as anonymous with files —
        // garbage must not synthesize data.
        for n in 1..=5u8 {
            let r = records.iter().find(|r| r.ip == ip(n)).expect("record");
            prop_assert!(r.files.is_empty(), "garbage produced files: {:?}", r.files);
        }
    }
}

/// A tarpit that accepts the login then answers nothing further: the
/// per-step timeout must reap it without blocking the others.
#[test]
fn tarpit_after_login_is_reaped() {
    struct Tarpit;
    impl Endpoint for Tarpit {
        fn on_inbound(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _p: u16) {
            ctx.send(conn, b"220 slow server\r\n");
        }
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            let line = String::from_utf8_lossy(data);
            if line.starts_with("USER") {
                ctx.send(conn, b"331 ok\r\n");
            } else if line.starts_with("PASS") {
                ctx.send(conn, b"230 in\r\n");
            }
            // …and then silence forever.
        }
    }
    let mut sim = Simulator::new(9);
    let tid = sim.register_endpoint(Box::new(Tarpit));
    sim.bind(ip(1), 21, tid);
    let honest = ServerProfile::new("FTP ready").with_anonymous(AnonPolicy::Allowed);
    let hid = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(2), honest, Vfs::new())));
    sim.bind(ip(2), 21, hid);

    let mut cfg = EnumConfig::new(SCANNER).with_concurrency(1);
    cfg.step_timeout = SimDuration::from_secs(5);
    let (en, results) = Enumerator::new(cfg, vec![ip(1), ip(2)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let records = results.borrow();
    assert_eq!(records.len(), 2, "the tarpit did not block the queue");
    let tarpit = records.iter().find(|r| r.ip == ip(1)).unwrap();
    assert!(tarpit.is_anonymous(), "login succeeded before the stall");
    let honest = records.iter().find(|r| r.ip == ip(2)).unwrap();
    assert!(honest.is_anonymous());
}
