//! Robustness: the enumerator against hostile or broken servers.
//!
//! The paper's tool had to survive "oddities found in the wild" (§III);
//! the strongest form of that requirement is surviving *adversarial*
//! servers: random reply garbage, reply floods, half-open behavior, and
//! abrupt resets — without panicking, leaking sessions, or stalling the
//! rest of the scan.

use enumerator::{EnumConfig, Enumerator, HostRecord};
use ftpd::profile::{AnonPolicy, ServerProfile};
use ftpd::FtpServerEngine;
use netsim::{ConnId, Ctx, Endpoint, FaultKind, FaultProfile, SimDuration, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simvfs::{FileMeta, Vfs};
use std::net::Ipv4Addr;

const SCANNER: Ipv4Addr = Ipv4Addr::new(198, 108, 0, 1);

/// A server that answers every line with seeded garbage and sometimes
/// hangs up.
struct HostileServer {
    seed: u64,
}

impl HostileServer {
    fn garbage(&self, salt: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ salt);
        let style = rng.random_range(0..5u8);
        match style {
            0 => b"220 welcome\r\n".to_vec(), // plausible then nothing
            1 => {
                // Random printable noise with stray CRLFs.
                let mut v = Vec::new();
                for _ in 0..rng.random_range(1..120) {
                    v.push(rng.random_range(0x20..0x7f));
                }
                v.extend_from_slice(b"\r\n");
                v
            }
            2 => {
                // Reply-code soup: valid-looking codes with junk text.
                format!("{} {:x}\r\n", rng.random_range(100..700), rng.random::<u64>())
                    .into_bytes()
            }
            3 => {
                // A never-terminated multiline reply.
                b"230-never finishes\r\n part two\r\n".to_vec()
            }
            _ => {
                // Binary noise, no line terminator.
                (0..rng.random_range(1..200)).map(|_| rng.random()).collect()
            }
        }
    }
}

impl Endpoint for HostileServer {
    fn on_inbound(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _port: u16) {
        let g = self.garbage(1);
        ctx.send(conn, &g);
    }
    fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
        let g = self.garbage(data.len() as u64 + 2);
        ctx.send(conn, &g);
        if data.len().is_multiple_of(7) {
            ctx.close(conn);
        }
    }
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(100, 64, 1, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A mixed population of hostile and honest servers: the enumerator
    /// finishes every session, the honest hosts are fully enumerated,
    /// and no session wedges the scan.
    #[test]
    fn enumerator_survives_hostile_servers(seed in any::<u64>()) {
        let mut sim = Simulator::new(5);
        let mut targets = Vec::new();
        // Five hostile servers.
        for n in 1..=5u8 {
            let id = sim.register_endpoint(Box::new(HostileServer { seed: seed ^ n as u64 }));
            sim.bind(ip(n), 21, id);
            targets.push(ip(n));
        }
        // Two honest ones interleaved.
        for n in 6..=7u8 {
            let mut vfs = Vfs::new();
            vfs.add_file("/pub/data.txt", FileMeta::public(3).with_content("ok")).unwrap();
            let profile =
                ServerProfile::new("ProFTPD 1.3.5 Server").with_anonymous(AnonPolicy::Allowed);
            let id = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(n), profile, vfs)));
            sim.bind(ip(n), 21, id);
            targets.push(ip(n));
        }
        let mut cfg = EnumConfig::new(SCANNER).with_concurrency(3);
        cfg.step_timeout = SimDuration::from_secs(5);
        cfg.request_gap = SimDuration::from_millis(5);
        let (en, results) = Enumerator::new(cfg, targets);
        let id = sim.register_endpoint(Box::new(en));
        sim.schedule_timer(id, SimDuration::ZERO, 0);
        sim.run();

        let records = results.borrow();
        prop_assert_eq!(records.len(), 7, "every target produced a record");
        // Honest servers enumerated completely despite the hostile noise.
        for n in 6..=7u8 {
            let r = records.iter().find(|r| r.ip == ip(n)).expect("record");
            prop_assert!(r.is_anonymous(), "honest host lost: {:?}", r.login);
            prop_assert!(r.files.iter().any(|f| f.path == "/pub/data.txt"));
        }
        // No hostile server was ever recorded as anonymous with files —
        // garbage must not synthesize data.
        for n in 1..=5u8 {
            let r = records.iter().find(|r| r.ip == ip(n)).expect("record");
            prop_assert!(r.files.is_empty(), "garbage produced files: {:?}", r.files);
        }
    }
}

/// Binds an honest anonymous server with one public file at `addr`.
fn bind_honest(sim: &mut Simulator, addr: Ipv4Addr) {
    let mut vfs = Vfs::new();
    vfs.add_file("/pub/data.txt", FileMeta::public(3).with_content("ok")).unwrap();
    let profile = ServerProfile::new("ProFTPD 1.3.5 Server").with_anonymous(AnonPolicy::Allowed);
    let id = sim.register_endpoint(Box::new(FtpServerEngine::new(addr, profile, vfs)));
    sim.bind(addr, 21, id);
}

/// Enumerates `targets` against `build`-constructed worlds and returns
/// the records. Used twice per property to assert determinism.
fn enumerate(build: &dyn Fn(&mut Simulator) -> Vec<Ipv4Addr>) -> Vec<HostRecord> {
    let mut sim = Simulator::new(3);
    let targets = build(&mut sim);
    let mut cfg = EnumConfig::new(SCANNER).with_concurrency(2);
    cfg.step_timeout = SimDuration::from_secs(5);
    cfg.request_gap = SimDuration::from_millis(5);
    let (en, results) = Enumerator::new(cfg, targets);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let records = results.borrow().clone();
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The netsim fault layer's own shapes — garbage replies, truncated
    /// transfers, byte-at-a-time drip-feeds, mid-session resets, broken
    /// data channels — against real server engines: every session ends,
    /// the clean control host enumerates fully, and the same seed
    /// reproduces the same `HostRecord`s byte for byte.
    #[test]
    fn enumerator_survives_injected_fault_profiles(seed in any::<u64>()) {
        let build = |sim: &mut Simulator| {
            let mut targets = Vec::new();
            for n in 1..=6u8 {
                bind_honest(sim, ip(n));
                sim.set_fault(ip(n), FaultProfile::sample(seed ^ u64::from(n)));
                targets.push(ip(n));
            }
            // Clean control host, enumerated amid the chaos.
            bind_honest(sim, ip(7));
            targets.push(ip(7));
            targets
        };
        let first = enumerate(&build);
        let second = enumerate(&build);
        prop_assert_eq!(first.len(), 7, "every target produced a record");
        prop_assert_eq!(&first, &second, "same seed must reproduce identical records");
        let clean = first.iter().find(|r| r.ip == ip(7)).expect("control record");
        prop_assert!(clean.is_anonymous(), "control host lost: {:?}", clean.login);
        prop_assert!(clean.gave_up.is_none());
        prop_assert!(clean.faults.is_clean(), "control host saw faults: {:?}", clean.faults);
        prop_assert!(clean.files.iter().any(|f| f.path == "/pub/data.txt"));
    }

    /// Each fault shape individually, with generated parameters: the
    /// record degrades along the taxonomy (partial, counted, no panic)
    /// and deterministically.
    #[test]
    fn fault_shapes_degrade_to_partial_records(
        shape in 0..5usize,
        after_sends in 1..6u32,
        after_bytes in 0..64u64,
        drip_ms in 300..2_000u64,
        garbage_seed in any::<u64>(),
        overlong in any::<bool>(),
    ) {
        let kind = match shape {
            0 => FaultKind::GarbageReplies { overlong },
            1 => FaultKind::TruncateData { after_bytes },
            2 => FaultKind::Tarpit {
                drip: SimDuration::from_millis(drip_ms),
                max_bytes: 8 + after_bytes,
            },
            3 => FaultKind::MidSessionRst { after_sends },
            _ => FaultKind::DataChannelBroken,
        };
        let build = |sim: &mut Simulator| {
            bind_honest(sim, ip(1));
            sim.set_fault(ip(1), FaultProfile::new(kind).with_seed(garbage_seed));
            bind_honest(sim, ip(2));
            vec![ip(1), ip(2)]
        };
        let first = enumerate(&build);
        let second = enumerate(&build);
        prop_assert_eq!(first.len(), 2);
        prop_assert_eq!(&first, &second, "fault behavior must be deterministic");
        let faulty = first.iter().find(|r| r.ip == ip(1)).expect("faulty record");
        let clean = first.iter().find(|r| r.ip == ip(2)).expect("clean record");
        prop_assert!(clean.is_anonymous());
        prop_assert!(clean.faults.is_clean());
        match kind {
            FaultKind::GarbageReplies { .. } => {
                // Never mistaken for a working FTP server, and the
                // garbage is tallied.
                prop_assert!(!faulty.is_anonymous());
                prop_assert!(
                    faulty.faults.garbage_lines + faulty.faults.overlong_lines > 0
                        || faulty.faults.step_timeouts > 0,
                    "garbage host left no trace: {:?}",
                    faulty.faults
                );
            }
            FaultKind::Tarpit { .. } => {
                // The drip never completes a greeting line: the step
                // deadline reaps the session.
                prop_assert!(faulty.gave_up.is_some(), "tarpit session never reaped");
            }
            FaultKind::DataChannelBroken => {
                // Control conversation works; transfers all fail.
                prop_assert!(faulty.is_anonymous(), "control channel should work");
                prop_assert!(faulty.files.is_empty(), "no listing could have arrived");
                prop_assert!(faulty.faults.data_conn_failures > 0);
            }
            FaultKind::MidSessionRst { .. } => {
                prop_assert!(
                    faulty.server_terminated || faulty.gave_up.is_some(),
                    "reset must be recorded"
                );
            }
            _ => {}
        }
    }
}

/// A tarpit that accepts the login then answers nothing further: the
/// per-step timeout must reap it without blocking the others.
#[test]
fn tarpit_after_login_is_reaped() {
    struct Tarpit;
    impl Endpoint for Tarpit {
        fn on_inbound(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _p: u16) {
            ctx.send(conn, b"220 slow server\r\n");
        }
        fn on_data(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, data: &[u8]) {
            let line = String::from_utf8_lossy(data);
            if line.starts_with("USER") {
                ctx.send(conn, b"331 ok\r\n");
            } else if line.starts_with("PASS") {
                ctx.send(conn, b"230 in\r\n");
            }
            // …and then silence forever.
        }
    }
    let mut sim = Simulator::new(9);
    let tid = sim.register_endpoint(Box::new(Tarpit));
    sim.bind(ip(1), 21, tid);
    let honest = ServerProfile::new("FTP ready").with_anonymous(AnonPolicy::Allowed);
    let hid = sim.register_endpoint(Box::new(FtpServerEngine::new(ip(2), honest, Vfs::new())));
    sim.bind(ip(2), 21, hid);

    let mut cfg = EnumConfig::new(SCANNER).with_concurrency(1);
    cfg.step_timeout = SimDuration::from_secs(5);
    let (en, results) = Enumerator::new(cfg, vec![ip(1), ip(2)]);
    let id = sim.register_endpoint(Box::new(en));
    sim.schedule_timer(id, SimDuration::ZERO, 0);
    sim.run();
    let records = results.borrow();
    assert_eq!(records.len(), 2, "the tarpit did not block the queue");
    let tarpit = records.iter().find(|r| r.ip == ip(1)).unwrap();
    assert!(tarpit.is_anonymous(), "login succeeded before the stall");
    let honest = records.iter().find(|r| r.ip == ip(2)).unwrap();
    assert!(honest.is_anonymous());
}
