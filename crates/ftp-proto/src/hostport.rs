//! `PORT`/`PASV`/`EPRT`/`EPSV` host-port argument handling.
//!
//! The `PORT` command and `227` (`PASV`) reply both carry an IPv4 address
//! and TCP port encoded as six comma-separated decimal bytes:
//! `h1,h2,h3,h4,p1,p2` where the port is `p1*256 + p2`. Validating — or
//! failing to validate — the address half of this tuple is the root of
//! the FTP *bounce attack* the paper measures in §VII-B, so this module
//! is load-bearing for the reproduction's experiments.

use crate::error::ProtoError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An (IPv4 address, TCP port) pair as carried by `PORT`/`PASV`.
///
/// # Example
///
/// ```
/// use ftp_proto::HostPort;
/// use std::net::Ipv4Addr;
///
/// let hp: HostPort = "10,0,0,1,31,144".parse()?;
/// assert_eq!(hp.ip(), Ipv4Addr::new(10, 0, 0, 1));
/// assert_eq!(hp.port(), 8080);
/// assert_eq!(hp.to_port_args(), "10,0,0,1,31,144");
/// # Ok::<(), ftp_proto::ProtoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostPort {
    ip: Ipv4Addr,
    port: u16,
}

impl HostPort {
    /// Creates a host-port pair.
    pub fn new(ip: Ipv4Addr, port: u16) -> Self {
        HostPort { ip, port }
    }

    /// The IPv4 address half.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The TCP port half.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Encodes as `h1,h2,h3,h4,p1,p2` for `PORT` arguments and `227`
    /// reply bodies.
    pub fn to_port_args(&self) -> String {
        self.port_args().to_string()
    }

    /// [`fmt::Display`] adapter for the `h1,h2,h3,h4,p1,p2` form, for
    /// `write!`-ing into a reused buffer without the intermediate
    /// `String` of [`HostPort::to_port_args`].
    pub fn port_args(&self) -> PortArgs {
        PortArgs(*self)
    }

    /// Encodes as RFC 2428 `|1|h.h.h.h|port|` for `EPRT`.
    pub fn to_eprt_args(&self) -> String {
        format!("|1|{}|{}|", self.ip, self.port)
    }

    /// Parses an RFC 2428 `EPRT` argument: `<d><proto><d><addr><d><port><d>`
    /// with any delimiter byte. Only protocol family `1` (IPv4) is
    /// accepted — the study is IPv4-only, as was the paper's scan.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadHostPort`] on malformed input or non-IPv4
    /// family.
    pub fn parse_eprt(arg: &str) -> Result<Self, ProtoError> {
        let mut chars = arg.chars();
        let delim = chars.next().ok_or_else(|| ProtoError::bad_host_port(arg))?;
        let rest: &str = chars.as_str();
        let mut parts = rest.split(delim);
        let proto = parts.next().ok_or_else(|| ProtoError::bad_host_port(arg))?;
        let addr = parts.next().ok_or_else(|| ProtoError::bad_host_port(arg))?;
        let port = parts.next().ok_or_else(|| ProtoError::bad_host_port(arg))?;
        if proto.trim() != "1" {
            return Err(ProtoError::bad_host_port(arg));
        }
        let ip: Ipv4Addr = addr.parse().map_err(|_| ProtoError::bad_host_port(arg))?;
        let port: u16 = port.parse().map_err(|_| ProtoError::bad_host_port(arg))?;
        Ok(HostPort::new(ip, port))
    }

    /// Extracts the host-port tuple from a `227 Entering Passive Mode`
    /// reply body, tolerating the many phrasings seen in the wild:
    /// `227 Entering Passive Mode (h1,h2,h3,h4,p1,p2)`,
    /// `227 =h1,h2,h3,h4,p1,p2`, bare tuples, and extra trailing text.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadHostPort`] when no six-number tuple can be
    /// found anywhere in the text.
    pub fn parse_pasv_reply(text: &str) -> Result<Self, ProtoError> {
        // Scan for the first run of six comma-separated integers.
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i].is_ascii_digit() {
                if let Some((hp, _len)) = try_tuple(&text[i..]) {
                    return Ok(hp);
                }
                // Skip past this run of digits.
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b',') {
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Err(ProtoError::bad_host_port(text))
    }
}

/// Attempts to parse `h1,h2,h3,h4,p1,p2` at the start of `s`.
fn try_tuple(s: &str) -> Option<(HostPort, usize)> {
    let mut nums = [0u16; 6];
    let mut pos = 0;
    for (idx, slot) in nums.iter_mut().enumerate() {
        if idx > 0 {
            if s[pos..].starts_with(',') {
                pos += 1;
            } else {
                return None;
            }
        }
        let start = pos;
        while pos < s.len() && s.as_bytes()[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == start || pos - start > 3 {
            return None;
        }
        let v: u16 = s[start..pos].parse().ok()?;
        if v > 255 {
            return None;
        }
        *slot = v;
    }
    let ip = Ipv4Addr::new(nums[0] as u8, nums[1] as u8, nums[2] as u8, nums[3] as u8);
    let port = nums[4] * 256 + nums[5];
    Some((HostPort::new(ip, port), pos))
}

impl FromStr for HostPort {
    type Err = ProtoError;

    /// Parses the classic `h1,h2,h3,h4,p1,p2` form (as in `PORT`).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadHostPort`] unless the input is exactly a
    /// six-number tuple (surrounding whitespace tolerated).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        match try_tuple(t) {
            Some((hp, len)) if len == t.len() => Ok(hp),
            _ => Err(ProtoError::bad_host_port(s)),
        }
    }
}

impl fmt::Display for HostPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Borrowless `Display` of a [`HostPort`] in `PORT`-argument form; see
/// [`HostPort::port_args`].
#[derive(Debug, Clone, Copy)]
pub struct PortArgs(HostPort);

impl fmt::Display for PortArgs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0.ip.octets();
        let port = self.0.port;
        write!(f, "{},{},{},{},{},{}", o[0], o[1], o[2], o[3], port >> 8, port & 0xff)
    }
}

impl From<(Ipv4Addr, u16)> for HostPort {
    fn from((ip, port): (Ipv4Addr, u16)) -> Self {
        HostPort::new(ip, port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let hp: HostPort = "192,168,0,10,200,21".parse().unwrap();
        assert_eq!(hp.ip(), Ipv4Addr::new(192, 168, 0, 10));
        assert_eq!(hp.port(), 200 * 256 + 21);
    }

    #[test]
    fn reject_out_of_range() {
        assert!("300,1,1,1,1,1".parse::<HostPort>().is_err());
        assert!("1,1,1,1,1".parse::<HostPort>().is_err());
        assert!("1,1,1,1,1,1,1".parse::<HostPort>().is_err());
        assert!("a,b,c,d,e,f".parse::<HostPort>().is_err());
    }

    #[test]
    fn pasv_reply_with_parentheses() {
        let hp =
            HostPort::parse_pasv_reply("Entering Passive Mode (10,0,0,5,19,137).").unwrap();
        assert_eq!(hp.ip(), Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(hp.port(), 19 * 256 + 137);
    }

    #[test]
    fn pasv_reply_bare_tuple() {
        let hp = HostPort::parse_pasv_reply("=127,0,0,1,4,1").unwrap();
        assert_eq!(hp.port(), 1025);
    }

    #[test]
    fn pasv_reply_skips_leading_numbers() {
        // Some servers phrase it as "227 Ok (1 of 5) (10,0,0,1,4,1)".
        let hp = HostPort::parse_pasv_reply("Ok 1 of 5 then (10,0,0,1,4,1)").unwrap();
        assert_eq!(hp.ip(), Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn pasv_reply_none_found() {
        assert!(HostPort::parse_pasv_reply("Entering Passive Mode").is_err());
        assert!(HostPort::parse_pasv_reply("1,2,3").is_err());
    }

    #[test]
    fn eprt_parse_and_encode() {
        let hp = HostPort::parse_eprt("|1|132.235.1.2|6275|").unwrap();
        assert_eq!(hp.ip(), Ipv4Addr::new(132, 235, 1, 2));
        assert_eq!(hp.port(), 6275);
        assert_eq!(hp.to_eprt_args(), "|1|132.235.1.2|6275|");
    }

    #[test]
    fn eprt_custom_delimiter() {
        let hp = HostPort::parse_eprt("!1!10.1.2.3!21!").unwrap();
        assert_eq!(hp.port(), 21);
    }

    #[test]
    fn eprt_rejects_ipv6_family() {
        assert!(HostPort::parse_eprt("|2|::1|6275|").is_err());
    }

    #[test]
    fn roundtrip_port_args() {
        let hp = HostPort::new(Ipv4Addr::new(1, 2, 3, 4), 65535);
        let s = hp.to_port_args();
        assert_eq!(s.parse::<HostPort>().unwrap(), hp);
    }

    #[test]
    fn display_is_ip_colon_port() {
        let hp = HostPort::new(Ipv4Addr::new(8, 8, 8, 8), 21);
        assert_eq!(hp.to_string(), "8.8.8.8:21");
    }
}
