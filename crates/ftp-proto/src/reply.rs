//! FTP server replies: three-digit codes and multiline reply assembly.

use crate::error::ProtoError;
use std::fmt;

/// A three-digit FTP reply code (RFC 959 §4.2).
///
/// The wrapper gives the digit classes names, because the enumerator's
/// decision logic ("is this a success? should I retry? give up?") is
/// driven entirely by the first digit — the paper notes that the *text*
/// attached to a code is implementation- and language-specific and cannot
/// be relied upon (§II gives four different meanings of 331).
///
/// # Example
///
/// ```
/// use ftp_proto::ReplyCode;
///
/// let code = ReplyCode::new(230);
/// assert!(code.is_positive_completion());
/// assert!(!code.is_transient_negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplyCode(u16);

impl ReplyCode {
    /// Service ready for new user.
    pub const SERVICE_READY: ReplyCode = ReplyCode(220);
    /// Service closing control connection.
    pub const SERVICE_CLOSING: ReplyCode = ReplyCode(221);
    /// User logged in, proceed.
    pub const LOGGED_IN: ReplyCode = ReplyCode(230);
    /// Requested file action okay, completed.
    pub const FILE_ACTION_OK: ReplyCode = ReplyCode(250);
    /// `PATHNAME` created (also `PWD` response).
    pub const PATHNAME_CREATED: ReplyCode = ReplyCode(257);
    /// User name okay, need password.
    pub const NEED_PASSWORD: ReplyCode = ReplyCode(331);
    /// Entering passive mode.
    pub const ENTERING_PASSIVE: ReplyCode = ReplyCode(227);
    /// Not logged in.
    pub const NOT_LOGGED_IN: ReplyCode = ReplyCode(530);
    /// Requested action not taken (file unavailable).
    pub const FILE_UNAVAILABLE: ReplyCode = ReplyCode(550);

    /// Wraps a raw code. Values outside `100..=599` are preserved as-is;
    /// real servers emit junk and the enumerator must carry it through.
    pub fn new(code: u16) -> Self {
        ReplyCode(code)
    }

    /// The raw numeric value.
    pub fn value(self) -> u16 {
        self.0
    }

    /// First digit is 1: positive preliminary (e.g. `150 Opening data
    /// connection`).
    pub fn is_positive_preliminary(self) -> bool {
        (100..200).contains(&self.0)
    }

    /// First digit is 2: positive completion.
    pub fn is_positive_completion(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// First digit is 3: positive intermediate (more input wanted).
    pub fn is_positive_intermediate(self) -> bool {
        (300..400).contains(&self.0)
    }

    /// First digit is 4: transient negative completion (retryable).
    pub fn is_transient_negative(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// First digit is 5: permanent negative completion.
    pub fn is_permanent_negative(self) -> bool {
        (500..600).contains(&self.0)
    }
}

impl fmt::Display for ReplyCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:03}", self.0)
    }
}

impl From<u16> for ReplyCode {
    fn from(v: u16) -> Self {
        ReplyCode(v)
    }
}

/// A complete server reply: a code plus one or more lines of text.
///
/// Multiline replies follow RFC 959: the first line is `ddd-text`, the
/// terminating line is `ddd text` with the *same* code. Lines in between
/// may be arbitrary (some servers even start them with other digits),
/// which [`ReplyParser`] tolerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    code: ReplyCode,
    lines: Vec<String>,
}

impl Reply {
    /// Builds a single-line reply.
    pub fn new(code: impl Into<ReplyCode>, text: impl Into<String>) -> Self {
        Reply { code: code.into(), lines: vec![text.into()] }
    }

    /// Builds a multiline reply from the given lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty; a reply always has at least one line.
    pub fn multiline(code: impl Into<ReplyCode>, lines: Vec<String>) -> Self {
        assert!(!lines.is_empty(), "a reply must have at least one line");
        Reply { code: code.into(), lines }
    }

    /// Parses a single `ddd text` or `ddd-text` line as a complete reply.
    ///
    /// Use [`ReplyParser`] when the input may span multiple lines.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadReplyCode`] if the line does not begin
    /// with three ASCII digits.
    pub fn parse_line(line: &str) -> Result<Self, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (code, _sep, text) = split_reply_line(line).ok_or_else(|| ProtoError::bad_reply(line))?;
        Ok(Reply::new(code, text))
    }

    /// The reply code.
    pub fn code(&self) -> ReplyCode {
        self.code
    }

    /// All text lines (without codes or CRLF).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The first line of text — for banners and quick matching.
    pub fn text(&self) -> &str {
        &self.lines[0]
    }

    /// Concatenated text of all lines joined with `\n`.
    pub fn full_text(&self) -> String {
        self.lines.join("\n")
    }

    /// Serializes to wire format (CRLF line endings, RFC 959 multiline
    /// framing).
    pub fn to_wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.lines.len() == 1 {
            let _ = write!(out, "{} {}\r\n", self.code, self.lines[0]);
        } else {
            for (i, l) in self.lines.iter().enumerate() {
                if i + 1 == self.lines.len() {
                    let _ = write!(out, "{} {}\r\n", self.code, l);
                } else if i == 0 {
                    let _ = write!(out, "{}-{}\r\n", self.code, l);
                } else {
                    let _ = write!(out, " {l}\r\n");
                }
            }
        }
        out
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.lines[0])
    }
}

/// Splits `"230 Login ok"` into `(230, ' ', "Login ok")`.
fn split_reply_line(line: &str) -> Option<(u16, char, &str)> {
    let b = line.as_bytes();
    if b.len() < 3 || !b[..3].iter().all(u8::is_ascii_digit) {
        return None;
    }
    let code: u16 = line[..3].parse().ok()?;
    match b.get(3) {
        None => Some((code, ' ', "")),
        Some(b' ') => Some((code, ' ', &line[4..])),
        Some(b'-') => Some((code, '-', &line[4..])),
        // Some implementations jam text against the code ("220Welcome").
        Some(_) => Some((code, ' ', &line[3..])),
    }
}

/// Incremental assembler for (possibly multiline) replies.
///
/// Feed complete lines via [`ReplyParser::push_line`]; a `Some(Reply)`
/// return means a full reply is available. The parser implements the
/// real-world tolerance the paper's enumerator needed: continuation lines
/// need not repeat the code, inner lines may start with digits, and a
/// terminator is any line starting with the opening code followed by a
/// space.
///
/// # Example
///
/// ```
/// use ftp_proto::reply::ReplyParser;
///
/// let mut p = ReplyParser::new();
/// assert!(p.push_line("230-Welcome to example FTP").unwrap().is_none());
/// assert!(p.push_line("Mirror of ftp.example.org").unwrap().is_none());
/// let reply = p.push_line("230 Login successful").unwrap().unwrap();
/// assert_eq!(reply.code().value(), 230);
/// assert_eq!(reply.lines().len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplyParser {
    pending: Option<(u16, Vec<String>)>,
}

impl ReplyParser {
    /// Creates an idle parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if a multiline reply is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// Feeds one line (trailing CR/LF tolerated).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadReplyCode`] only when a *fresh* reply line
    /// lacks a leading code; continuation lines are accepted verbatim.
    pub fn push_line(&mut self, line: &str) -> Result<Option<Reply>, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        match &mut self.pending {
            None => {
                let (code, sep, text) =
                    split_reply_line(line).ok_or_else(|| ProtoError::bad_reply(line))?;
                if sep == '-' {
                    self.pending = Some((code, vec![text.to_owned()]));
                    Ok(None)
                } else {
                    Ok(Some(Reply::new(code, text)))
                }
            }
            Some((open_code, lines)) => {
                // A terminator must be a *strict* `ddd<SP>` (or bare `ddd`)
                // line — the jammed-text tolerance applied to fresh replies
                // would otherwise misread inner lines like "211x ..." as
                // terminators.
                let strict_sep = line.len() == 3 || line.as_bytes().get(3) == Some(&b' ');
                if let (true, Some((code, ' ', text))) = (strict_sep, split_reply_line(line)) {
                    if code == *open_code {
                        lines.push(text.to_owned());
                        let (code, lines) = self.pending.take().expect("pending reply present");
                        return Ok(Some(Reply::multiline(code, lines)));
                    }
                }
                // Continuation line: strip the conventional leading space.
                let text = line.strip_prefix(' ').unwrap_or(line);
                lines.push(text.to_owned());
                Ok(None)
            }
        }
    }

    /// Signals end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::TruncatedReply`] if a multiline reply was
    /// still being assembled — the server hung up mid-reply, which the
    /// enumerator treats as refusal of service.
    pub fn finish(&mut self) -> Result<(), ProtoError> {
        if self.pending.take().is_some() {
            Err(ProtoError::TruncatedReply)
        } else {
            Ok(())
        }
    }
}

/// A borrowed view of one complete reply: the code plus a slice of the
/// assembled text (lines joined with `\n`).
///
/// This is [`Reply`]'s zero-allocation twin. The enumerator's per-reply
/// hot path decodes every reply through [`ReplyBuf`] into one of these;
/// the owned [`Reply`] survives as the wire-rendering / test-facing
/// wrapper (see DESIGN.md §8). Lifetime is tied to the [`ReplyBuf`] (or
/// other buffer) the text lives in, which stays valid until the next
/// `push_line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyRef<'a> {
    code: ReplyCode,
    text: &'a str,
    line_count: usize,
}

impl<'a> ReplyRef<'a> {
    /// Builds a view over already-joined reply text (`\n` separators).
    pub fn new(code: impl Into<ReplyCode>, text: &'a str) -> Self {
        ReplyRef { code: code.into(), text, line_count: text.split('\n').count() }
    }

    /// The reply code.
    pub fn code(self) -> ReplyCode {
        self.code
    }

    /// The first line of text — for banners and quick matching.
    pub fn text(self) -> &'a str {
        match self.text.split_once('\n') {
            Some((first, _)) => first,
            None => self.text,
        }
    }

    /// All lines joined with `\n` — the borrowed analogue of
    /// [`Reply::full_text`], without the join allocation.
    pub fn full_text(self) -> &'a str {
        self.text
    }

    /// Iterates the text lines (without codes or CRLF).
    pub fn lines(self) -> std::str::Split<'a, char> {
        self.text.split('\n')
    }

    /// Number of text lines.
    pub fn line_count(self) -> usize {
        self.line_count
    }

    /// Whether the reply spans more than one line — O(1), unlike
    /// collecting [`ReplyRef::lines`] just to test its length.
    pub fn has_multiple_lines(self) -> bool {
        self.line_count > 1
    }

    /// Copies into an owned [`Reply`].
    pub fn to_reply(self) -> Reply {
        Reply { code: self.code, lines: self.lines().map(str::to_owned).collect() }
    }
}

/// Incremental reply assembler with a reusable text buffer — the
/// zero-allocation counterpart of [`ReplyParser`].
///
/// Feed complete lines via [`ReplyBuf::push_line`]; a `Some(ReplyRef)`
/// return borrows the assembled text straight out of the buffer, which
/// is recycled for the next reply instead of reallocated. Assembly
/// tolerances are identical to [`ReplyParser`]: continuation lines need
/// not repeat the code, inner lines may start with digits, and a
/// terminator is a strict `ddd<SP>` (or bare `ddd`) line repeating the
/// opening code.
#[derive(Debug, Clone, Default)]
pub struct ReplyBuf {
    code: u16,
    /// Lines assembled so far, joined with `\n`.
    text: String,
    line_count: usize,
    in_progress: bool,
}

impl ReplyBuf {
    /// Creates an idle assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if a multiline reply is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.in_progress
    }

    /// Feeds one line (trailing CR/LF tolerated). Returns a borrowed
    /// view of the completed reply, valid until the next call.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadReplyCode`] only when a *fresh* reply
    /// line lacks a leading code; continuation lines are accepted
    /// verbatim.
    pub fn push_line(&mut self, line: &str) -> Result<Option<ReplyRef<'_>>, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if !self.in_progress {
            let (code, sep, text) =
                split_reply_line(line).ok_or_else(|| ProtoError::bad_reply(line))?;
            self.code = code;
            self.text.clear();
            self.text.push_str(text);
            self.line_count = 1;
            if sep == '-' {
                self.in_progress = true;
                return Ok(None);
            }
            return Ok(Some(ReplyRef {
                code: ReplyCode(code),
                text: &self.text,
                line_count: 1,
            }));
        }
        // Same strict-terminator rule as ReplyParser: `ddd<SP>` or a
        // bare `ddd` repeating the opening code ends the reply; the
        // jammed-text tolerance stays reserved for fresh replies.
        let strict_sep = line.len() == 3 || line.as_bytes().get(3) == Some(&b' ');
        if strict_sep {
            if let Some((code, ' ', text)) = split_reply_line(line) {
                if code == self.code {
                    self.text.push('\n');
                    self.text.push_str(text);
                    self.line_count += 1;
                    self.in_progress = false;
                    return Ok(Some(ReplyRef {
                        code: ReplyCode(code),
                        text: &self.text,
                        line_count: self.line_count,
                    }));
                }
            }
        }
        // Continuation line: strip the conventional leading space.
        let text = line.strip_prefix(' ').unwrap_or(line);
        self.text.push('\n');
        self.text.push_str(text);
        self.line_count += 1;
        Ok(None)
    }

    /// Signals end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::TruncatedReply`] if a multiline reply was
    /// still being assembled — the server hung up mid-reply, which the
    /// enumerator treats as refusal of service.
    pub fn finish(&mut self) -> Result<(), ProtoError> {
        if std::mem::take(&mut self.in_progress) {
            Err(ProtoError::TruncatedReply)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_classes() {
        assert!(ReplyCode::new(150).is_positive_preliminary());
        assert!(ReplyCode::new(230).is_positive_completion());
        assert!(ReplyCode::new(331).is_positive_intermediate());
        assert!(ReplyCode::new(421).is_transient_negative());
        assert!(ReplyCode::new(530).is_permanent_negative());
    }

    #[test]
    fn single_line_parse() {
        let r = Reply::parse_line("220 ProFTPD 1.3.5 Server ready.\r\n").unwrap();
        assert_eq!(r.code(), ReplyCode::SERVICE_READY);
        assert_eq!(r.text(), "ProFTPD 1.3.5 Server ready.");
    }

    #[test]
    fn jammed_text_tolerated() {
        let r = Reply::parse_line("220Welcome").unwrap();
        assert_eq!(r.code().value(), 220);
        assert_eq!(r.text(), "Welcome");
    }

    #[test]
    fn bare_code_tolerated() {
        let r = Reply::parse_line("230").unwrap();
        assert_eq!(r.code().value(), 230);
        assert_eq!(r.text(), "");
    }

    #[test]
    fn garbage_rejected() {
        assert!(Reply::parse_line("hello world").is_err());
        assert!(Reply::parse_line("22 partial").is_err());
    }

    #[test]
    fn multiline_assembly() {
        let mut p = ReplyParser::new();
        assert_eq!(p.push_line("220-Welcome").unwrap(), None);
        assert!(p.in_progress());
        assert_eq!(p.push_line(" to the machine").unwrap(), None);
        let r = p.push_line("220 Ready").unwrap().unwrap();
        assert_eq!(r.lines().len(), 3);
        assert_eq!(r.lines()[1], "to the machine");
        assert!(!p.in_progress());
    }

    #[test]
    fn multiline_inner_lines_with_other_codes() {
        // Some servers embed digit-leading lines mid-reply.
        let mut p = ReplyParser::new();
        p.push_line("211-Features:").unwrap();
        assert_eq!(p.push_line("211x not terminator").unwrap(), None);
        assert_eq!(p.push_line("500 different code is continuation").unwrap(), None);
        let r = p.push_line("211 End").unwrap().unwrap();
        assert_eq!(r.code().value(), 211);
        assert_eq!(r.lines().len(), 4);
    }

    #[test]
    fn truncated_multiline_detected() {
        let mut p = ReplyParser::new();
        p.push_line("220-Hello").unwrap();
        assert_eq!(p.finish(), Err(ProtoError::TruncatedReply));
        // finish() clears state.
        assert!(p.finish().is_ok());
    }

    #[test]
    fn wire_roundtrip_single() {
        let r = Reply::new(250u16, "Okay");
        assert_eq!(r.to_wire(), "250 Okay\r\n");
        let mut p = ReplyParser::new();
        let back = p.push_line(r.to_wire().trim_end()).unwrap().unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wire_roundtrip_multiline() {
        let r = Reply::multiline(230u16, vec!["a".into(), "b".into(), "c".into()]);
        let wire = r.to_wire();
        let mut p = ReplyParser::new();
        let mut out = None;
        for line in wire.lines() {
            out = p.push_line(line).unwrap();
        }
        assert_eq!(out.unwrap(), r);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn multiline_requires_lines() {
        let _ = Reply::multiline(230u16, vec![]);
    }

    #[test]
    fn display_shows_code_and_first_line() {
        let r = Reply::new(230u16, "Login successful");
        assert_eq!(r.to_string(), "230 Login successful");
    }

    #[test]
    fn reply_buf_single_line() {
        let mut b = ReplyBuf::new();
        let r = b.push_line("220 Ready\r\n").unwrap().unwrap();
        assert_eq!(r.code().value(), 220);
        assert_eq!(r.text(), "Ready");
        assert_eq!(r.full_text(), "Ready");
        assert!(!r.has_multiple_lines());
        assert_eq!(r.line_count(), 1);
    }

    #[test]
    fn reply_buf_multiline_and_reuse() {
        let mut b = ReplyBuf::new();
        assert!(b.push_line("230-Welcome").unwrap().is_none());
        assert!(b.in_progress());
        assert!(b.push_line(" to the machine").unwrap().is_none());
        {
            let r = b.push_line("230 Ready").unwrap().unwrap();
            assert_eq!(r.line_count(), 3);
            assert!(r.has_multiple_lines());
            assert_eq!(r.text(), "Welcome");
            assert_eq!(r.full_text(), "Welcome\nto the machine\nReady");
            assert_eq!(r.lines().nth(1), Some("to the machine"));
        }
        // The buffer is recycled: the next reply starts clean.
        let r = b.push_line("221 Bye").unwrap().unwrap();
        assert_eq!(r.full_text(), "Bye");
        assert_eq!(r.line_count(), 1);
    }

    #[test]
    fn reply_buf_matches_reply_parser() {
        let streams: &[&[&str]] = &[
            &["220 ProFTPD ready"],
            &["220Welcome"],
            &["230"],
            &["211-Features:", "211x not terminator", "500 other code", "211 End"],
            &["230-Welcome", " indented", "plain", "230 Done"],
        ];
        for stream in streams {
            let mut owned = ReplyParser::new();
            let mut borrowed = ReplyBuf::new();
            for line in *stream {
                let a = owned.push_line(line).unwrap();
                let b = borrowed.push_line(line).unwrap();
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.code(), b.code());
                        assert_eq!(a.full_text(), b.full_text());
                        assert_eq!(a.lines().len(), b.line_count());
                        assert_eq!(b.to_reply(), a);
                    }
                    (a, b) => panic!("parser divergence on {line:?}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn reply_buf_truncation_detected() {
        let mut b = ReplyBuf::new();
        b.push_line("220-Hello").unwrap();
        assert_eq!(b.finish(), Err(ProtoError::TruncatedReply));
        assert!(b.finish().is_ok());
        // And garbage on a fresh line still errors.
        assert!(b.push_line("garbage").is_err());
    }

    #[test]
    fn reply_ref_view_helpers() {
        let r = ReplyRef::new(211u16, "Features:\nMDTM\nEnd");
        assert_eq!(r.line_count(), 3);
        assert!(r.has_multiple_lines());
        assert_eq!(r.text(), "Features:");
        assert_eq!(r.lines().collect::<Vec<_>>(), ["Features:", "MDTM", "End"]);
    }
}
