//! `robots.txt` parsing and matching, per Google's specification.
//!
//! The paper's enumerator fetched each host's `robots.txt` and followed
//! it per Google's specification (§III-A); 5.9 K of 11.3 K servers with a
//! robots file excluded the entire filesystem, and the crawler adhered.
//! This implementation covers the parts of the spec the study exercised:
//! user-agent group selection, `Allow`/`Disallow` longest-match
//! precedence (with `Allow` winning ties), `*` wildcards, and `$`
//! end-anchors.

use serde::{Deserialize, Serialize};

/// A single Allow/Disallow rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Rule {
    allow: bool,
    pattern: String,
}

/// A parsed `robots.txt` policy for a particular user-agent.
///
/// # Example
///
/// ```
/// use ftp_proto::Robots;
///
/// let robots = Robots::parse(
///     "User-agent: *\nDisallow: /private/\nAllow: /private/pub\n",
///     "ftp-enumerator",
/// );
/// assert!(robots.is_allowed("/public/file.txt"));
/// assert!(!robots.is_allowed("/private/secret.txt"));
/// assert!(robots.is_allowed("/private/pub/ok.txt"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Robots {
    rules: Vec<Rule>,
}

impl Robots {
    /// A policy with no rules: everything allowed (equivalent to a
    /// missing or empty `robots.txt`).
    pub fn allow_all() -> Self {
        Robots::default()
    }

    /// A policy that excludes the entire filesystem — what 5.9 K of the
    /// paper's 11.3 K robots-bearing servers requested.
    pub fn deny_all() -> Self {
        Robots { rules: vec![Rule { allow: false, pattern: "/".to_owned() }] }
    }

    /// Parses a robots.txt body, selecting the group that best matches
    /// `user_agent` (most-specific name match; `*` as fallback), per the
    /// Google specification.
    pub fn parse(body: &str, user_agent: &str) -> Self {
        let ua_lower = user_agent.to_ascii_lowercase();
        // Group records: consecutive user-agent lines share the following
        // rule block.
        #[derive(Default)]
        struct Group {
            agents: Vec<String>,
            rules: Vec<Rule>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut current: Option<Group> = None;
        let mut last_was_agent = false;
        for raw_line in body.lines() {
            let line = match raw_line.find('#') {
                Some(ix) => &raw_line[..ix],
                None => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else { continue };
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            match key.as_str() {
                "user-agent" => {
                    if last_was_agent {
                        if let Some(g) = current.as_mut() {
                            g.agents.push(value.to_ascii_lowercase());
                        }
                    } else {
                        if let Some(g) = current.take() {
                            groups.push(g);
                        }
                        current = Some(Group {
                            agents: vec![value.to_ascii_lowercase()],
                            rules: Vec::new(),
                        });
                    }
                    last_was_agent = true;
                }
                "allow" | "disallow" => {
                    last_was_agent = false;
                    if let Some(g) = current.as_mut() {
                        // Empty Disallow means "allow everything" (no rule).
                        if !value.is_empty() {
                            g.rules.push(Rule {
                                allow: key == "allow",
                                pattern: value.to_owned(),
                            });
                        }
                    }
                }
                _ => {
                    last_was_agent = false;
                }
            }
        }
        if let Some(g) = current.take() {
            groups.push(g);
        }
        // Select best group: longest agent-name substring match; '*' is
        // length 0.
        let mut best: Option<(usize, &Group)> = None;
        for g in &groups {
            for agent in &g.agents {
                let score = if agent == "*" {
                    Some(0)
                } else if ua_lower.contains(agent.as_str()) {
                    Some(agent.len())
                } else {
                    None
                };
                if let Some(s) = score {
                    let better = match best {
                        None => true,
                        Some((bs, _)) => s > bs,
                    };
                    if better {
                        best = Some((s, g));
                    }
                }
            }
        }
        match best {
            Some((_, g)) => Robots { rules: g.rules.clone() },
            None => Robots::allow_all(),
        }
    }

    /// True if the policy permits fetching `path`.
    ///
    /// Longest-pattern-match wins; on equal lengths, `Allow` wins.
    pub fn is_allowed(&self, path: &str) -> bool {
        self.verdict(path, "")
    }

    /// True if the policy permits entering directory `path`, evaluated
    /// as if a trailing `/` were appended — equivalent to
    /// `is_allowed(&format!("{path}/"))` without the allocation. The
    /// enumerator probes every directory this way before queueing it.
    pub fn is_allowed_dir(&self, path: &str) -> bool {
        self.verdict(path, "/")
    }

    /// Longest-match verdict over the virtual concatenation
    /// `path ⧺ tail`.
    fn verdict(&self, path: &str, tail: &str) -> bool {
        let mut verdict = true;
        let mut best_len = 0usize;
        let mut best_allow = true;
        let mut matched = false;
        for rule in &self.rules {
            if pattern_matches_concat(&rule.pattern, path, tail) {
                let len = rule.pattern.len();
                if !matched || len > best_len || (len == best_len && rule.allow && !best_allow) {
                    best_len = len;
                    best_allow = rule.allow;
                    matched = true;
                }
            }
        }
        if matched {
            verdict = best_allow;
        }
        verdict
    }

    /// True if the policy denies the filesystem root (and hence, in the
    /// absence of Allow overrides, everything) — used by the enumerator to
    /// short-circuit traversal, matching the paper's "excluded the entire
    /// filesystem" statistic.
    pub fn denies_everything(&self) -> bool {
        !self.is_allowed("/")
    }

    /// Number of rules retained for the selected user-agent group.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

/// Google-style pattern match: literal prefix with `*` wildcards and an
/// optional `$` end anchor.
#[cfg(test)]
fn pattern_matches(pattern: &str, path: &str) -> bool {
    pattern_matches_concat(pattern, path, "")
}

/// [`pattern_matches`] evaluated against the virtual concatenation
/// `path ⧺ tail` without materializing it (and without the per-call
/// `split('*').collect()` the old matcher paid). Both inputs are valid
/// UTF-8, so byte-wise substring search agrees with `str::find`.
fn pattern_matches_concat(pattern: &str, path: &str, tail: &str) -> bool {
    let (pattern, anchored) = match pattern.strip_suffix('$') {
        Some(p) => (p, true),
        None => (pattern, false),
    };
    let total = path.len() + tail.len();
    let mut pos = 0usize;
    let mut at_start = true;
    for part in pattern.split('*') {
        if part.is_empty() {
            at_start = false;
            continue;
        }
        if at_start {
            if !concat_starts_at(path, tail, 0, part.as_bytes()) {
                return false;
            }
            pos = part.len();
            at_start = false;
        } else {
            match concat_find(path, tail, pos, part.as_bytes()) {
                Some(found) => pos = found + part.len(),
                None => return false,
            }
        }
    }
    if anchored {
        // The last literal part must reach the end of the path (or the
        // pattern ends with '*', which can always consume the tail).
        pattern.ends_with('*') || pos == total
    } else {
        true
    }
}

/// Byte `i` of the virtual concatenation `path ⧺ tail`.
fn concat_byte(path: &[u8], tail: &[u8], i: usize) -> u8 {
    if i < path.len() { path[i] } else { tail[i - path.len()] }
}

/// Whether `needle` occurs at offset `at` of `path ⧺ tail`.
fn concat_starts_at(path: &str, tail: &str, at: usize, needle: &[u8]) -> bool {
    let (path, tail) = (path.as_bytes(), tail.as_bytes());
    if at + needle.len() > path.len() + tail.len() {
        return false;
    }
    needle.iter().enumerate().all(|(j, &b)| concat_byte(path, tail, at + j) == b)
}

/// First occurrence of `needle` in `path ⧺ tail` at or after `from`.
fn concat_find(path: &str, tail: &str, from: usize, needle: &[u8]) -> Option<usize> {
    let total = path.len() + tail.len();
    if from + needle.len() > total {
        return None;
    }
    (from..=total - needle.len()).find(|&i| concat_starts_at(path, tail, i, needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_robots_allows_everything() {
        let r = Robots::allow_all();
        assert!(r.is_allowed("/anything/at/all"));
        assert!(!r.denies_everything());
    }

    #[test]
    fn deny_all_denies_everything() {
        let r = Robots::deny_all();
        assert!(!r.is_allowed("/"));
        assert!(!r.is_allowed("/pub/file"));
        assert!(r.denies_everything());
    }

    #[test]
    fn basic_disallow_prefix() {
        let r = Robots::parse("User-agent: *\nDisallow: /secret/\n", "bot");
        assert!(!r.is_allowed("/secret/file"));
        assert!(r.is_allowed("/public/file"));
        assert!(r.is_allowed("/secret")); // prefix requires the slash
    }

    #[test]
    fn allow_overrides_longer_match() {
        let r = Robots::parse("User-agent: *\nDisallow: /a/\nAllow: /a/b/\n", "bot");
        assert!(!r.is_allowed("/a/x"));
        assert!(r.is_allowed("/a/b/x"));
    }

    #[test]
    fn allow_wins_ties() {
        let r = Robots::parse("User-agent: *\nDisallow: /p\nAllow: /p\n", "bot");
        assert!(r.is_allowed("/page"));
    }

    #[test]
    fn wildcard_and_anchor() {
        let r = Robots::parse("User-agent: *\nDisallow: /*.zip$\n", "bot");
        assert!(!r.is_allowed("/backups/all.zip"));
        assert!(r.is_allowed("/backups/all.zip.txt"));
        assert!(r.is_allowed("/zipinfo"));
    }

    #[test]
    fn specific_agent_group_selected() {
        let body = "User-agent: googlebot\nDisallow: /g/\n\nUser-agent: *\nDisallow: /all/\n";
        let g = Robots::parse(body, "Googlebot/2.1");
        assert!(!g.is_allowed("/g/x"));
        assert!(g.is_allowed("/all/x"));
        let other = Robots::parse(body, "ftp-enumerator");
        assert!(other.is_allowed("/g/x"));
        assert!(!other.is_allowed("/all/x"));
    }

    #[test]
    fn stacked_user_agents_share_rules() {
        let body = "User-agent: a\nUser-agent: b\nDisallow: /x/\n";
        assert!(!Robots::parse(body, "a").is_allowed("/x/1"));
        assert!(!Robots::parse(body, "b").is_allowed("/x/1"));
        assert!(Robots::parse(body, "c").is_allowed("/x/1"));
    }

    #[test]
    fn comments_and_junk_ignored() {
        let body = "# hello\nUser-agent: * # everyone\nDisallow: /p # private\nCrawl-delay: 10\nnonsense line\n";
        let r = Robots::parse(body, "bot");
        assert!(!r.is_allowed("/p/x"));
        assert_eq!(r.rule_count(), 1);
    }

    #[test]
    fn empty_disallow_means_allow() {
        let r = Robots::parse("User-agent: *\nDisallow:\n", "bot");
        assert!(r.is_allowed("/anything"));
        assert_eq!(r.rule_count(), 0);
    }

    #[test]
    fn full_exclusion_detected() {
        let r = Robots::parse("User-agent: *\nDisallow: /\n", "ftp-enumerator");
        assert!(r.denies_everything());
    }

    #[test]
    fn pattern_star_in_middle() {
        assert!(pattern_matches("/a/*/c", "/a/b/c"));
        assert!(pattern_matches("/a/*/c", "/a/bbb/cc")); // prefix semantics
        assert!(!pattern_matches("/a/*/c", "/a/b/d"));
    }

    #[test]
    fn is_allowed_dir_equals_allocated_probe() {
        let bodies = [
            "User-agent: *\nDisallow: /secret/\n",
            "User-agent: *\nDisallow: /a/\nAllow: /a/b/\n",
            "User-agent: *\nDisallow: /*.d/$\n",
            "User-agent: *\nDisallow: /pub*js/\n",
            "User-agent: *\nDisallow: /\n",
        ];
        let dirs = ["/", "/secret", "/secret/", "/a", "/a/b", "/pub/extjs", "/x.d", "/x.d/y"];
        for body in bodies {
            let r = Robots::parse(body, "ftp-enumerator");
            for dir in dirs {
                assert_eq!(
                    r.is_allowed_dir(dir),
                    r.is_allowed(&format!("{dir}/")),
                    "divergence for {body:?} on {dir:?}"
                );
            }
        }
    }

    #[test]
    fn concat_matcher_spans_the_boundary() {
        // The literal part straddles the path/tail seam.
        let r = Robots::parse("User-agent: *\nDisallow: /data/\n", "bot");
        assert!(!r.is_allowed_dir("/data"));
        assert!(r.is_allowed("/data"));
        // Anchored pattern must reach the end of the virtual path.
        let a = Robots::parse("User-agent: *\nDisallow: /tmp/$\n", "bot");
        assert!(!a.is_allowed_dir("/tmp"));
        assert!(a.is_allowed_dir("/tmp/x"));
    }
}
