//! FTP client commands (RFC 959, RFC 2228, RFC 2389, RFC 2428, RFC 4217).

use crate::error::ProtoError;
use crate::hostport::HostPort;
use std::fmt;
use std::str::FromStr;

/// An FTP command as sent by a client on the control channel.
///
/// The parser is intentionally liberal, mirroring the hardening the
/// paper's enumerator needed to speak with "diverse real-world
/// implementations" (§III): verbs are matched case-insensitively,
/// surrounding whitespace is tolerated, and unknown verbs are preserved in
/// [`Command::Other`] rather than rejected so a server (or honeypot) can
/// still log and answer `502 Command not implemented`.
///
/// # Example
///
/// ```
/// use ftp_proto::Command;
///
/// let c: Command = "user anonymous".parse()?;
/// assert_eq!(c, Command::User("anonymous".into()));
/// assert_eq!(c.to_string(), "USER anonymous\r\n");
/// # Ok::<(), ftp_proto::ProtoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Command {
    /// `USER <name>` — begin login.
    User(String),
    /// `PASS <password>` — complete login.
    Pass(String),
    /// `ACCT <info>` — account information (rarely used).
    Acct(String),
    /// `CWD <dir>` — change working directory.
    Cwd(String),
    /// `CDUP` — change to parent directory.
    Cdup,
    /// `QUIT` — end session.
    Quit,
    /// `REIN` — reinitialize session.
    Rein,
    /// `PORT h1,h2,h3,h4,p1,p2` — active-mode data channel.
    Port(HostPort),
    /// `PASV` — request passive-mode data channel.
    Pasv,
    /// `EPRT |1|h.h.h.h|p|` — extended active mode (RFC 2428).
    Eprt(HostPort),
    /// `EPSV` — extended passive mode (RFC 2428).
    Epsv,
    /// `TYPE <A|I|E|L>` — transfer type.
    Type(TransferType),
    /// `MODE <S|B|C>` — transfer mode.
    Mode(char),
    /// `STRU <F|R|P>` — file structure.
    Stru(char),
    /// `RETR <path>` — download a file.
    Retr(String),
    /// `STOR <path>` — upload a file.
    Stor(String),
    /// `STOU` — store with unique name.
    Stou,
    /// `APPE <path>` — append to a file.
    Appe(String),
    /// `REST <marker>` — restart transfer at offset.
    Rest(u64),
    /// `RNFR <path>` — rename from.
    Rnfr(String),
    /// `RNTO <path>` — rename to.
    Rnto(String),
    /// `ABOR` — abort transfer.
    Abor,
    /// `DELE <path>` — delete a file.
    Dele(String),
    /// `RMD <path>` — remove a directory.
    Rmd(String),
    /// `MKD <path>` — make a directory.
    Mkd(String),
    /// `PWD` — print working directory.
    Pwd,
    /// `LIST [path]` — long directory listing.
    List(Option<String>),
    /// `NLST [path]` — names-only listing.
    Nlst(Option<String>),
    /// `MLSD [path]` — machine-readable listing (RFC 3659).
    Mlsd(Option<String>),
    /// `MLST [path]` — machine-readable single entry (RFC 3659).
    Mlst(Option<String>),
    /// `SIZE <path>` — file size (RFC 3659).
    Size(String),
    /// `MDTM <path>` — modification time (RFC 3659).
    Mdtm(String),
    /// `SITE <params>` — site-specific commands.
    Site(String),
    /// `SYST` — system type.
    Syst,
    /// `STAT [path]` — status.
    Stat(Option<String>),
    /// `HELP [topic]` — help text.
    Help(Option<String>),
    /// `FEAT` — feature list (RFC 2389).
    Feat,
    /// `OPTS <name> [value]` — set options (RFC 2389).
    Opts(String),
    /// `NOOP` — no operation.
    Noop,
    /// `AUTH <TLS|SSL>` — upgrade to FTPS (RFC 4217 / RFC 2228).
    Auth(AuthMechanism),
    /// `PBSZ <size>` — protection buffer size (RFC 2228).
    Pbsz(u64),
    /// `PROT <C|P>` — data-channel protection level (RFC 2228).
    Prot(char),
    /// Any verb this crate does not model; `(verb, argument)`.
    Other(String, String),
}

/// Transfer type for the `TYPE` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransferType {
    /// ASCII (`TYPE A`) — the protocol default.
    #[default]
    Ascii,
    /// Image/binary (`TYPE I`).
    Image,
    /// EBCDIC (`TYPE E`) — historical.
    Ebcdic,
    /// Local byte size (`TYPE L`).
    Local,
}

/// Mechanism requested in an `AUTH` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuthMechanism {
    /// `AUTH TLS` (RFC 4217).
    Tls,
    /// `AUTH SSL` (legacy draft; still widely sent by clients).
    Ssl,
}

impl Command {
    /// The canonical verb for this command, e.g. `"RETR"`.
    pub fn verb(&self) -> &str {
        match self {
            Command::User(_) => "USER",
            Command::Pass(_) => "PASS",
            Command::Acct(_) => "ACCT",
            Command::Cwd(_) => "CWD",
            Command::Cdup => "CDUP",
            Command::Quit => "QUIT",
            Command::Rein => "REIN",
            Command::Port(_) => "PORT",
            Command::Pasv => "PASV",
            Command::Eprt(_) => "EPRT",
            Command::Epsv => "EPSV",
            Command::Type(_) => "TYPE",
            Command::Mode(_) => "MODE",
            Command::Stru(_) => "STRU",
            Command::Retr(_) => "RETR",
            Command::Stor(_) => "STOR",
            Command::Stou => "STOU",
            Command::Appe(_) => "APPE",
            Command::Rest(_) => "REST",
            Command::Rnfr(_) => "RNFR",
            Command::Rnto(_) => "RNTO",
            Command::Abor => "ABOR",
            Command::Dele(_) => "DELE",
            Command::Rmd(_) => "RMD",
            Command::Mkd(_) => "MKD",
            Command::Pwd => "PWD",
            Command::List(_) => "LIST",
            Command::Nlst(_) => "NLST",
            Command::Mlsd(_) => "MLSD",
            Command::Mlst(_) => "MLST",
            Command::Size(_) => "SIZE",
            Command::Mdtm(_) => "MDTM",
            Command::Site(_) => "SITE",
            Command::Syst => "SYST",
            Command::Stat(_) => "STAT",
            Command::Help(_) => "HELP",
            Command::Feat => "FEAT",
            Command::Opts(_) => "OPTS",
            Command::Noop => "NOOP",
            Command::Auth(_) => "AUTH",
            Command::Pbsz(_) => "PBSZ",
            Command::Prot(_) => "PROT",
            Command::Other(v, _) => v,
        }
    }

    /// Whether this command mutates server state (upload, delete, rename,
    /// mkdir). The enumerator's ethics layer refuses to issue these; the
    /// honeypot flags sessions that send them.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Command::Stor(_)
                | Command::Stou
                | Command::Appe(_)
                | Command::Dele(_)
                | Command::Rmd(_)
                | Command::Mkd(_)
                | Command::Rnfr(_)
                | Command::Rnto(_)
        )
    }

    /// Whether this command opens a data channel when accepted.
    pub fn uses_data_channel(&self) -> bool {
        matches!(
            self,
            Command::Retr(_)
                | Command::Stor(_)
                | Command::Stou
                | Command::Appe(_)
                | Command::List(_)
                | Command::Nlst(_)
                | Command::Mlsd(_)
        )
    }
}

fn opt_arg(arg: &str) -> Option<String> {
    if arg.is_empty() {
        None
    } else {
        Some(arg.to_owned())
    }
}

impl FromStr for Command {
    type Err = ProtoError;

    /// Parses one control-channel line (with or without trailing CRLF).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadCommand`] when the line is empty, and
    /// [`ProtoError::BadHostPort`] when a `PORT`/`EPRT` argument is
    /// malformed. Unknown verbs succeed as [`Command::Other`].
    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let line = line.trim_end_matches(['\r', '\n']).trim();
        if line.is_empty() {
            return Err(ProtoError::bad_command(line));
        }
        let (verb, arg) = match line.find(' ') {
            Some(ix) => (&line[..ix], line[ix + 1..].trim()),
            None => (line, ""),
        };
        // Every known verb is at most 4 ASCII bytes, so uppercase into a
        // stack buffer and only allocate for the unknown-verb fallback.
        let mut verb_buf = [0u8; 4];
        let upper = if verb.len() <= 4 {
            let buf = &mut verb_buf[..verb.len()];
            buf.copy_from_slice(verb.as_bytes());
            buf.make_ascii_uppercase();
            // ASCII-uppercasing bytes never invalidates UTF-8.
            std::str::from_utf8(buf).unwrap_or("")
        } else {
            ""
        };
        Ok(match upper {
            "USER" => Command::User(arg.to_owned()),
            "PASS" => Command::Pass(arg.to_owned()),
            "ACCT" => Command::Acct(arg.to_owned()),
            "CWD" | "XCWD" => Command::Cwd(arg.to_owned()),
            "CDUP" | "XCUP" => Command::Cdup,
            "QUIT" => Command::Quit,
            "REIN" => Command::Rein,
            "PORT" => Command::Port(arg.parse()?),
            "PASV" => Command::Pasv,
            "EPRT" => Command::Eprt(HostPort::parse_eprt(arg)?),
            "EPSV" => Command::Epsv,
            "TYPE" => Command::Type(match arg.chars().next().map(|c| c.to_ascii_uppercase()) {
                Some('A') | None => TransferType::Ascii,
                Some('I') => TransferType::Image,
                Some('E') => TransferType::Ebcdic,
                Some('L') => TransferType::Local,
                Some(_) => return Err(ProtoError::bad_command(line)),
            }),
            "MODE" => Command::Mode(first_char_upper(arg).unwrap_or('S')),
            "STRU" => Command::Stru(first_char_upper(arg).unwrap_or('F')),
            "RETR" => Command::Retr(arg.to_owned()),
            "STOR" => Command::Stor(arg.to_owned()),
            "STOU" => Command::Stou,
            "APPE" => Command::Appe(arg.to_owned()),
            "REST" => Command::Rest(arg.parse().map_err(|_| ProtoError::bad_command(line))?),
            "RNFR" => Command::Rnfr(arg.to_owned()),
            "RNTO" => Command::Rnto(arg.to_owned()),
            "ABOR" => Command::Abor,
            "DELE" => Command::Dele(arg.to_owned()),
            "RMD" | "XRMD" => Command::Rmd(arg.to_owned()),
            "MKD" | "XMKD" => Command::Mkd(arg.to_owned()),
            "PWD" | "XPWD" => Command::Pwd,
            "LIST" => Command::List(opt_arg(arg)),
            "NLST" => Command::Nlst(opt_arg(arg)),
            "MLSD" => Command::Mlsd(opt_arg(arg)),
            "MLST" => Command::Mlst(opt_arg(arg)),
            "SIZE" => Command::Size(arg.to_owned()),
            "MDTM" => Command::Mdtm(arg.to_owned()),
            "SITE" => Command::Site(arg.to_owned()),
            "SYST" => Command::Syst,
            "STAT" => Command::Stat(opt_arg(arg)),
            "HELP" => Command::Help(opt_arg(arg)),
            "FEAT" => Command::Feat,
            "OPTS" => Command::Opts(arg.to_owned()),
            "NOOP" => Command::Noop,
            "AUTH" => {
                if arg.eq_ignore_ascii_case("TLS") || arg.eq_ignore_ascii_case("TLS-C") {
                    Command::Auth(AuthMechanism::Tls)
                } else if arg.eq_ignore_ascii_case("SSL") {
                    Command::Auth(AuthMechanism::Ssl)
                } else {
                    Command::Other("AUTH".into(), arg.to_owned())
                }
            }
            "PBSZ" => Command::Pbsz(arg.parse().unwrap_or(0)),
            "PROT" => Command::Prot(first_char_upper(arg).unwrap_or('C')),
            _ => Command::Other(verb.to_ascii_uppercase(), arg.to_owned()),
        })
    }
}

fn first_char_upper(s: &str) -> Option<char> {
    s.chars().next().map(|c| c.to_ascii_uppercase())
}

impl fmt::Display for Command {
    /// Serializes the command as a wire line *including* trailing CRLF.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::User(a) => write!(f, "USER {a}\r\n"),
            Command::Pass(a) => write!(f, "PASS {a}\r\n"),
            Command::Acct(a) => write!(f, "ACCT {a}\r\n"),
            Command::Cwd(a) => write!(f, "CWD {a}\r\n"),
            Command::Cdup => write!(f, "CDUP\r\n"),
            Command::Quit => write!(f, "QUIT\r\n"),
            Command::Rein => write!(f, "REIN\r\n"),
            Command::Port(hp) => write!(f, "PORT {}\r\n", hp.to_port_args()),
            Command::Pasv => write!(f, "PASV\r\n"),
            Command::Eprt(hp) => write!(f, "EPRT {}\r\n", hp.to_eprt_args()),
            Command::Epsv => write!(f, "EPSV\r\n"),
            Command::Type(t) => write!(
                f,
                "TYPE {}\r\n",
                match t {
                    TransferType::Ascii => 'A',
                    TransferType::Image => 'I',
                    TransferType::Ebcdic => 'E',
                    TransferType::Local => 'L',
                }
            ),
            Command::Mode(c) => write!(f, "MODE {c}\r\n"),
            Command::Stru(c) => write!(f, "STRU {c}\r\n"),
            Command::Retr(a) => write!(f, "RETR {a}\r\n"),
            Command::Stor(a) => write!(f, "STOR {a}\r\n"),
            Command::Stou => write!(f, "STOU\r\n"),
            Command::Appe(a) => write!(f, "APPE {a}\r\n"),
            Command::Rest(n) => write!(f, "REST {n}\r\n"),
            Command::Rnfr(a) => write!(f, "RNFR {a}\r\n"),
            Command::Rnto(a) => write!(f, "RNTO {a}\r\n"),
            Command::Abor => write!(f, "ABOR\r\n"),
            Command::Dele(a) => write!(f, "DELE {a}\r\n"),
            Command::Rmd(a) => write!(f, "RMD {a}\r\n"),
            Command::Mkd(a) => write!(f, "MKD {a}\r\n"),
            Command::Pwd => write!(f, "PWD\r\n"),
            Command::List(None) => write!(f, "LIST\r\n"),
            Command::List(Some(a)) => write!(f, "LIST {a}\r\n"),
            Command::Nlst(None) => write!(f, "NLST\r\n"),
            Command::Nlst(Some(a)) => write!(f, "NLST {a}\r\n"),
            Command::Mlsd(None) => write!(f, "MLSD\r\n"),
            Command::Mlsd(Some(a)) => write!(f, "MLSD {a}\r\n"),
            Command::Mlst(None) => write!(f, "MLST\r\n"),
            Command::Mlst(Some(a)) => write!(f, "MLST {a}\r\n"),
            Command::Size(a) => write!(f, "SIZE {a}\r\n"),
            Command::Mdtm(a) => write!(f, "MDTM {a}\r\n"),
            Command::Site(a) => write!(f, "SITE {a}\r\n"),
            Command::Syst => write!(f, "SYST\r\n"),
            Command::Stat(None) => write!(f, "STAT\r\n"),
            Command::Stat(Some(a)) => write!(f, "STAT {a}\r\n"),
            Command::Help(None) => write!(f, "HELP\r\n"),
            Command::Help(Some(a)) => write!(f, "HELP {a}\r\n"),
            Command::Feat => write!(f, "FEAT\r\n"),
            Command::Opts(a) => write!(f, "OPTS {a}\r\n"),
            Command::Noop => write!(f, "NOOP\r\n"),
            Command::Auth(AuthMechanism::Tls) => write!(f, "AUTH TLS\r\n"),
            Command::Auth(AuthMechanism::Ssl) => write!(f, "AUTH SSL\r\n"),
            Command::Pbsz(n) => write!(f, "PBSZ {n}\r\n"),
            Command::Prot(c) => write!(f, "PROT {c}\r\n"),
            Command::Other(v, a) if a.is_empty() => write!(f, "{v}\r\n"),
            Command::Other(v, a) => write!(f, "{v} {a}\r\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_case_insensitively() {
        assert_eq!("user anonymous".parse::<Command>().unwrap(), Command::User("anonymous".into()));
        assert_eq!("QuIt".parse::<Command>().unwrap(), Command::Quit);
    }

    #[test]
    fn tolerates_crlf_and_whitespace() {
        assert_eq!(
            "  RETR  file.txt \r\n".parse::<Command>().unwrap(),
            Command::Retr("file.txt".into())
        );
    }

    #[test]
    fn unknown_verbs_become_other() {
        let c: Command = "XSHA1 foo".parse().unwrap();
        assert_eq!(c, Command::Other("XSHA1".into(), "foo".into()));
        assert_eq!(c.verb(), "XSHA1");
    }

    #[test]
    fn empty_line_is_error() {
        assert!("".parse::<Command>().is_err());
        assert!("\r\n".parse::<Command>().is_err());
    }

    #[test]
    fn port_roundtrip() {
        let c: Command = "PORT 192,168,1,2,4,1".parse().unwrap();
        match &c {
            Command::Port(hp) => {
                assert_eq!(hp.ip().octets(), [192, 168, 1, 2]);
                assert_eq!(hp.port(), 4 * 256 + 1);
            }
            _ => panic!("expected PORT"),
        }
        assert_eq!(c.to_string(), "PORT 192,168,1,2,4,1\r\n");
    }

    #[test]
    fn eprt_parse() {
        let c: Command = "EPRT |1|10.0.0.1|8080|".parse().unwrap();
        match c {
            Command::Eprt(hp) => assert_eq!(hp.port(), 8080),
            _ => panic!("expected EPRT"),
        }
    }

    #[test]
    fn x_aliases_map_to_canonical() {
        assert_eq!("XPWD".parse::<Command>().unwrap(), Command::Pwd);
        assert_eq!("XCWD /tmp".parse::<Command>().unwrap(), Command::Cwd("/tmp".into()));
    }

    #[test]
    fn write_commands_flagged() {
        assert!("STOR x".parse::<Command>().unwrap().is_write());
        assert!("MKD d".parse::<Command>().unwrap().is_write());
        assert!(!"RETR x".parse::<Command>().unwrap().is_write());
        assert!(!"LIST".parse::<Command>().unwrap().is_write());
    }

    #[test]
    fn data_channel_commands_flagged() {
        assert!("LIST".parse::<Command>().unwrap().uses_data_channel());
        assert!("RETR f".parse::<Command>().unwrap().uses_data_channel());
        assert!(!"PWD".parse::<Command>().unwrap().uses_data_channel());
    }

    #[test]
    fn auth_variants() {
        assert_eq!("AUTH TLS".parse::<Command>().unwrap(), Command::Auth(AuthMechanism::Tls));
        assert_eq!("auth ssl".parse::<Command>().unwrap(), Command::Auth(AuthMechanism::Ssl));
        // Unknown mechanisms survive as Other for honeypot logging.
        assert!(matches!("AUTH KRB5".parse::<Command>().unwrap(), Command::Other(_, _)));
    }

    #[test]
    fn display_always_ends_with_crlf() {
        for line in ["USER a", "PASV", "LIST", "SITE CHMOD 777 x", "TYPE I"] {
            let c: Command = line.parse().unwrap();
            assert!(c.to_string().ends_with("\r\n"), "{line}");
        }
    }

    #[test]
    fn rest_requires_numeric_argument() {
        assert!("REST 100".parse::<Command>().is_ok());
        assert!("REST abc".parse::<Command>().is_err());
    }
}
