//! Control-channel line framing: CRLF splitting with Telnet IAC handling.
//!
//! FTP's control channel is a Telnet NVT stream (RFC 959 §3.1). Real
//! servers occasionally emit Telnet IAC sequences or bare-LF line
//! endings; the paper's enumerator had to tolerate both. [`LineCodec`]
//! accumulates bytes and yields complete decoded lines.
//!
//! The hot path is borrowed end to end: [`LineCodec::next_line_str`]
//! frames a line in place inside the internal buffer (IAC sequences are
//! compacted in place only when an IAC byte is actually present) and
//! hands out a `&str` view of it. The line's bytes stay at the front of
//! the buffer until the next codec call consumes them, so a clean ASCII
//! line — the overwhelming case — is decoded with zero allocations and
//! zero copies. Invalid UTF-8 falls back to one reusable lossy scratch
//! per codec. The owned [`LineCodec::next_line`] survives as a thin
//! wrapper for tests and cold callers.

use crate::error::ProtoError;
use bytes::BytesMut;
use std::borrow::Cow;

/// Telnet "Interpret As Command" escape byte.
const IAC: u8 = 255;

/// Maximum accepted control-channel line length. Real clients impose a
/// similar cap to defend against hostile servers streaming an unbounded
/// "line"; the enumerator treats an over-long line as server misbehavior.
pub const MAX_LINE: usize = 8192;

/// Incremental CRLF line decoder with Telnet IAC stripping.
///
/// # Example
///
/// ```
/// use ftp_proto::LineCodec;
///
/// let mut codec = LineCodec::new();
/// codec.extend(b"220 Welcome\r\n331 Pas");
/// assert_eq!(codec.next_line()?, Some("220 Welcome".to_owned()));
/// assert_eq!(codec.next_line()?, None);
/// codec.extend(b"sword required\r\n");
/// assert_eq!(codec.next_line()?, Some("331 Password required".to_owned()));
/// # Ok::<(), ftp_proto::ProtoError>(())
/// ```
#[derive(Debug, Default)]
pub struct LineCodec {
    buf: BytesMut,
    /// Bytes at the front of `buf` belonging to the line handed out by
    /// the previous [`LineCodec::next_line_str`] call; consumed lazily
    /// by the next codec call so the returned `&str` can borrow them.
    pending: usize,
    /// Reused decode buffer for the rare line holding invalid UTF-8.
    lossy: String,
}

impl LineCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the line handed out by the previous borrowed call.
    fn flush_pending(&mut self) {
        if self.pending > 0 {
            self.buf.advance(self.pending);
            self.pending = 0;
        }
    }

    /// Appends raw bytes received from the network.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.flush_pending();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pending
    }

    /// Length of the trailing unterminated tail (bytes after the last
    /// `\n`, or the whole buffer when no terminator is present).
    ///
    /// Callers that must frame a whole batch before dispatching any of
    /// it use this to detect the over-long-line condition up front:
    /// [`LineCodec::next_line_str`] fails exactly when this exceeds
    /// [`MAX_LINE`] after every terminated line has been drained.
    pub fn unterminated_tail_len(&self) -> usize {
        let live = &self.buf[self.pending..];
        match live.iter().rposition(|&b| b == b'\n') {
            Some(pos) => live.len() - pos - 1,
            None => live.len(),
        }
    }

    /// Extracts the next complete line as a borrowed `&str` view into
    /// the codec's internal buffer.
    ///
    /// Lines are terminated by `\r\n` or a bare `\n`; the terminator is
    /// consumed and not included. Telnet IAC escape sequences are
    /// compacted in place (only when an IAC byte is present); non-UTF-8
    /// bytes are replaced with U+FFFD via a reusable scratch buffer (the
    /// enumerator must not abort on binary junk — filenames in the wild
    /// are in many encodings). The returned slice stays valid until the
    /// next call on this codec.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::LineTooLong`] when more than [`MAX_LINE`]
    /// bytes accumulate without a terminator.
    pub fn next_line_str(&mut self) -> Result<Option<&str>, ProtoError> {
        self.flush_pending();
        let Some(pos) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > MAX_LINE {
                let len = self.buf.len();
                self.buf.clear();
                return Err(ProtoError::LineTooLong { len });
            }
            return Ok(None);
        };
        // Drop the trailing \n and optional \r.
        let mut end = pos;
        if end > 0 && self.buf[end - 1] == b'\r' {
            end -= 1;
        }
        // The terminator (and any bytes IAC compaction leaves dead
        // between `end` and it) is consumed on the next call.
        self.pending = pos + 1;
        if self.buf[..end].contains(&IAC) {
            end = strip_iac_in_place(&mut self.buf[..end]);
        }
        // Validity probed with a bool first so the borrow handed back on
        // the common path never overlaps the lossy-scratch fallback.
        if std::str::from_utf8(&self.buf[..end]).is_ok() {
            obs::counter(obs::Counter::CodecLinesBorrowed, 1);
            let line = &self.buf[..end];
            return Ok(Some(std::str::from_utf8(line).expect("just validated")));
        }
        obs::counter(obs::Counter::CodecLinesCopied, 1);
        self.lossy.clear();
        lossy_append(&mut self.lossy, &self.buf[..end]);
        Ok(Some(&self.lossy))
    }

    /// Extracts the next complete line, if one is buffered, as an owned
    /// `String`. Thin wrapper over [`LineCodec::next_line_str`] kept for
    /// tests and cold callers.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::LineTooLong`] when more than [`MAX_LINE`]
    /// bytes accumulate without a terminator.
    pub fn next_line(&mut self) -> Result<Option<String>, ProtoError> {
        Ok(self.next_line_str()?.map(str::to_owned))
    }

    /// Like [`LineCodec::next_line`], but decodes into a caller-provided
    /// buffer instead of allocating a fresh `String` per line.
    ///
    /// `out` is cleared first; returns `Ok(true)` when a complete line
    /// was decoded into it.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::LineTooLong`] when more than [`MAX_LINE`]
    /// bytes accumulate without a terminator.
    pub fn next_line_into(&mut self, out: &mut String) -> Result<bool, ProtoError> {
        out.clear();
        match self.next_line_str()? {
            Some(line) => {
                out.push_str(line);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drains any trailing unterminated data (used at connection close —
    /// some servers send a final line without CRLF before hanging up).
    pub fn take_remainder(&mut self) -> Option<String> {
        self.flush_pending();
        if self.buf.is_empty() {
            return None;
        }
        let cleaned = strip_iac(&self.buf);
        let mut out = String::with_capacity(cleaned.len());
        lossy_append(&mut out, &cleaned);
        self.buf.clear();
        Some(out)
    }
}

/// Removes Telnet IAC sequences without allocating when no IAC byte is
/// present (the overwhelming case): `IAC IAC` unescapes to a literal
/// 255, `IAC <cmd>` and `IAC <cmd> <opt>` are dropped.
pub fn strip_iac(bytes: &[u8]) -> Cow<'_, [u8]> {
    if !bytes.contains(&IAC) {
        return Cow::Borrowed(bytes);
    }
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == IAC {
            match bytes.get(i + 1) {
                Some(&IAC) => {
                    out.push(IAC);
                    i += 2;
                }
                // WILL/WONT/DO/DONT take an option byte.
                Some(&cmd) if (251..=254).contains(&cmd) => i += 3,
                Some(_) => i += 2,
                None => i += 1,
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Cow::Owned(out)
}

/// In-place variant of [`strip_iac`]: compacts the slice and returns the
/// new length. Same escape semantics; the write cursor never passes the
/// read cursor, so the compaction is a single forward pass.
fn strip_iac_in_place(bytes: &mut [u8]) -> usize {
    let mut w = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == IAC {
            match bytes.get(i + 1) {
                Some(&IAC) => {
                    bytes[w] = IAC;
                    w += 1;
                    i += 2;
                }
                Some(&cmd) if (251..=254).contains(&cmd) => i += 3,
                Some(_) => i += 2,
                None => i += 1,
            }
        } else {
            bytes[w] = bytes[i];
            w += 1;
            i += 1;
        }
    }
    w
}

/// Appends `bytes` to `out` with invalid UTF-8 replaced by U+FFFD, using
/// the same maximal-subpart substitution as `String::from_utf8_lossy`
/// but without allocating an intermediate `String`.
pub fn lossy_append(out: &mut String, mut bytes: &[u8]) {
    loop {
        match std::str::from_utf8(bytes) {
            Ok(s) => {
                out.push_str(s);
                return;
            }
            Err(e) => {
                let (valid, rest) = bytes.split_at(e.valid_up_to());
                out.push_str(std::str::from_utf8(valid).expect("prefix is valid"));
                out.push('\u{FFFD}');
                let skip = e.error_len().unwrap_or(rest.len());
                bytes = &rest[skip..];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_crlf_lines() {
        let mut c = LineCodec::new();
        c.extend(b"a\r\nb\r\n");
        assert_eq!(c.next_line().unwrap(), Some("a".into()));
        assert_eq!(c.next_line().unwrap(), Some("b".into()));
        assert_eq!(c.next_line().unwrap(), None);
    }

    #[test]
    fn tolerates_bare_lf() {
        let mut c = LineCodec::new();
        c.extend(b"hello\nworld\n");
        assert_eq!(c.next_line().unwrap(), Some("hello".into()));
        assert_eq!(c.next_line().unwrap(), Some("world".into()));
    }

    #[test]
    fn partial_lines_buffered() {
        let mut c = LineCodec::new();
        c.extend(b"par");
        assert_eq!(c.next_line().unwrap(), None);
        assert_eq!(c.buffered(), 3);
        c.extend(b"tial\r\n");
        assert_eq!(c.next_line().unwrap(), Some("partial".into()));
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn strips_telnet_negotiation() {
        let mut c = LineCodec::new();
        // IAC WILL <option 1> before text, and escaped IAC IAC inside.
        c.extend(&[255, 251, 1]);
        c.extend(b"OK");
        c.extend(&[255, 255]);
        c.extend(b"\r\n");
        let line = c.next_line().unwrap().unwrap();
        assert!(line.starts_with("OK"));
        assert_eq!(line.as_bytes().last(), Some(&0xbd)); // U+FFFD tail byte of lossy 255
    }

    #[test]
    fn non_utf8_is_lossy_not_fatal() {
        let mut c = LineCodec::new();
        c.extend(&[0xC3, 0x28, b'\r', b'\n']); // invalid UTF-8 pair
        let line = c.next_line().unwrap().unwrap();
        assert!(line.contains('\u{FFFD}'));
    }

    #[test]
    fn overlong_line_errors_and_resets() {
        let mut c = LineCodec::new();
        c.extend(&vec![b'x'; MAX_LINE + 1]);
        assert!(matches!(c.next_line(), Err(ProtoError::LineTooLong { .. })));
        // State is cleared so the session can resync.
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn take_remainder_flushes_unterminated_tail() {
        let mut c = LineCodec::new();
        c.extend(b"221 Goodbye");
        assert_eq!(c.next_line().unwrap(), None);
        assert_eq!(c.take_remainder(), Some("221 Goodbye".into()));
        assert_eq!(c.take_remainder(), None);
    }

    #[test]
    fn borrowed_line_survives_until_next_call() {
        let mut c = LineCodec::new();
        c.extend(b"first\r\nsecond\r\n");
        let first = c.next_line_str().unwrap().unwrap().to_owned();
        assert_eq!(first, "first");
        // The first line's bytes are consumed lazily; the second line
        // must still frame correctly behind them.
        assert_eq!(c.next_line_str().unwrap(), Some("second"));
        assert_eq!(c.next_line_str().unwrap(), None);
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn iac_straddles_chunk_boundary() {
        // An escaped IAC IAC split across two network chunks must still
        // unescape to a single literal 255 once the line completes.
        let mut c = LineCodec::new();
        c.extend(&[b'x', 255]);
        assert_eq!(c.next_line().unwrap(), None);
        c.extend(&[255, b'y', b'\r', b'\n']);
        let line = c.next_line().unwrap().unwrap();
        // x + lossy(255) + y
        assert_eq!(line, "x\u{FFFD}y");

        // And a WILL <opt> negotiation split one byte per chunk.
        let mut c = LineCodec::new();
        c.extend(&[255]);
        c.extend(&[251]);
        c.extend(&[1]);
        c.extend(b"ok\n");
        assert_eq!(c.next_line().unwrap(), Some("ok".into()));
    }

    #[test]
    fn strip_iac_borrows_when_clean() {
        assert!(matches!(strip_iac(b"clean line"), Cow::Borrowed(_)));
        let stripped = strip_iac(&[b'a', 255, 251, 1, b'b']);
        assert!(matches!(stripped, Cow::Owned(_)));
        assert_eq!(&stripped[..], b"ab");
        // Escaped IAC IAC unescapes to one literal 255.
        assert_eq!(&strip_iac(&[255, 255])[..], &[255][..]);
        // A dangling IAC at end-of-buffer is dropped, not kept.
        assert_eq!(&strip_iac(&[b'a', 255])[..], b"a");
    }

    #[test]
    fn take_remainder_strips_iac_without_extra_copies() {
        let mut c = LineCodec::new();
        c.extend(&[b'2', b'2', b'1', 255, 251, 1, b' ', b'b', b'y', b'e']);
        assert_eq!(c.take_remainder(), Some("221 bye".into()));
    }

    #[test]
    fn unterminated_tail_len_tracks_last_newline() {
        let mut c = LineCodec::new();
        c.extend(b"one\r\ntwo\r\npartial");
        assert_eq!(c.unterminated_tail_len(), 7);
        assert_eq!(c.next_line().unwrap(), Some("one".into()));
        assert_eq!(c.next_line().unwrap(), Some("two".into()));
        assert_eq!(c.unterminated_tail_len(), 7);
        c.extend(b"\r\n");
        assert_eq!(c.unterminated_tail_len(), 0);
    }

    #[test]
    fn lossy_append_matches_from_utf8_lossy() {
        let cases: &[&[u8]] = &[
            b"plain ascii",
            &[0xC3, 0x28],
            &[0xE2, 0x82],
            &[0xE2, 0x82, 0xAC],
            &[0xF0, 0x9F, 0x92],
            &[0xFF, 0x0D, 0x41],
            &[],
        ];
        for case in cases {
            let mut out = String::new();
            lossy_append(&mut out, case);
            assert_eq!(out, String::from_utf8_lossy(case), "case {case:?}");
        }
    }
}
