//! Control-channel line framing: CRLF splitting with Telnet IAC handling.
//!
//! FTP's control channel is a Telnet NVT stream (RFC 959 §3.1). Real
//! servers occasionally emit Telnet IAC sequences or bare-LF line
//! endings; the paper's enumerator had to tolerate both. [`LineCodec`]
//! accumulates bytes and yields complete decoded lines.

use crate::error::ProtoError;
use bytes::BytesMut;

/// Telnet "Interpret As Command" escape byte.
const IAC: u8 = 255;

/// Maximum accepted control-channel line length. Real clients impose a
/// similar cap to defend against hostile servers streaming an unbounded
/// "line"; the enumerator treats an over-long line as server misbehavior.
pub const MAX_LINE: usize = 8192;

/// Incremental CRLF line decoder with Telnet IAC stripping.
///
/// # Example
///
/// ```
/// use ftp_proto::LineCodec;
///
/// let mut codec = LineCodec::new();
/// codec.extend(b"220 Welcome\r\n331 Pas");
/// assert_eq!(codec.next_line()?, Some("220 Welcome".to_owned()));
/// assert_eq!(codec.next_line()?, None);
/// codec.extend(b"sword required\r\n");
/// assert_eq!(codec.next_line()?, Some("331 Password required".to_owned()));
/// # Ok::<(), ftp_proto::ProtoError>(())
/// ```
#[derive(Debug, Default)]
pub struct LineCodec {
    buf: BytesMut,
}

impl LineCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the network.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete line, if one is buffered.
    ///
    /// Lines are terminated by `\r\n` or a bare `\n`; the terminator is
    /// consumed and not included. Telnet IAC escape sequences are
    /// stripped; non-UTF-8 bytes are replaced with U+FFFD (the enumerator
    /// must not abort on binary junk — filenames in the wild are in many
    /// encodings).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::LineTooLong`] when more than [`MAX_LINE`]
    /// bytes accumulate without a terminator.
    pub fn next_line(&mut self) -> Result<Option<String>, ProtoError> {
        let mut line = String::new();
        Ok(self.next_line_into(&mut line)?.then_some(line))
    }

    /// Like [`LineCodec::next_line`], but decodes into a caller-provided
    /// buffer instead of allocating a fresh `String` per line.
    ///
    /// `out` is cleared first; returns `Ok(true)` when a complete line
    /// was decoded into it. The hot-loop callers (server engine,
    /// enumerator) reuse one buffer across every line of a session, so
    /// a clean ASCII line — the overwhelmingly common case — costs no
    /// allocation at all.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::LineTooLong`] when more than [`MAX_LINE`]
    /// bytes accumulate without a terminator.
    pub fn next_line_into(&mut self, out: &mut String) -> Result<bool, ProtoError> {
        out.clear();
        let Some(pos) = self.buf.iter().position(|&b| b == b'\n') else {
            if self.buf.len() > MAX_LINE {
                let len = self.buf.len();
                self.buf.clear();
                return Err(ProtoError::LineTooLong { len });
            }
            return Ok(false);
        };
        // Drop the trailing \n and optional \r.
        let mut line = &self.buf[..pos];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.contains(&IAC) {
            let cleaned = strip_iac(line);
            out.push_str(&String::from_utf8_lossy(&cleaned));
        } else {
            // Borrowed `Cow` unless the line held invalid UTF-8.
            out.push_str(&String::from_utf8_lossy(line));
        }
        self.buf.advance(pos + 1);
        Ok(true)
    }

    /// Drains any trailing unterminated data (used at connection close —
    /// some servers send a final line without CRLF before hanging up).
    pub fn take_remainder(&mut self) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let bytes: Vec<u8> = self.buf.split_to(self.buf.len()).to_vec();
        let cleaned = strip_iac(&bytes);
        Some(String::from_utf8_lossy(&cleaned).into_owned())
    }
}

/// Removes Telnet IAC sequences: `IAC IAC` unescapes to a literal 255,
/// `IAC <cmd>` and `IAC <cmd> <opt>` are dropped.
fn strip_iac(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == IAC {
            match bytes.get(i + 1) {
                Some(&IAC) => {
                    out.push(IAC);
                    i += 2;
                }
                // WILL/WONT/DO/DONT take an option byte.
                Some(&cmd) if (251..=254).contains(&cmd) => i += 3,
                Some(_) => i += 2,
                None => i += 1,
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_crlf_lines() {
        let mut c = LineCodec::new();
        c.extend(b"a\r\nb\r\n");
        assert_eq!(c.next_line().unwrap(), Some("a".into()));
        assert_eq!(c.next_line().unwrap(), Some("b".into()));
        assert_eq!(c.next_line().unwrap(), None);
    }

    #[test]
    fn tolerates_bare_lf() {
        let mut c = LineCodec::new();
        c.extend(b"hello\nworld\n");
        assert_eq!(c.next_line().unwrap(), Some("hello".into()));
        assert_eq!(c.next_line().unwrap(), Some("world".into()));
    }

    #[test]
    fn partial_lines_buffered() {
        let mut c = LineCodec::new();
        c.extend(b"par");
        assert_eq!(c.next_line().unwrap(), None);
        assert_eq!(c.buffered(), 3);
        c.extend(b"tial\r\n");
        assert_eq!(c.next_line().unwrap(), Some("partial".into()));
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn strips_telnet_negotiation() {
        let mut c = LineCodec::new();
        // IAC WILL <option 1> before text, and escaped IAC IAC inside.
        c.extend(&[255, 251, 1]);
        c.extend(b"OK");
        c.extend(&[255, 255]);
        c.extend(b"\r\n");
        let line = c.next_line().unwrap().unwrap();
        assert!(line.starts_with("OK"));
        assert_eq!(line.as_bytes().last(), Some(&0xbd)); // U+FFFD tail byte of lossy 255
    }

    #[test]
    fn non_utf8_is_lossy_not_fatal() {
        let mut c = LineCodec::new();
        c.extend(&[0xC3, 0x28, b'\r', b'\n']); // invalid UTF-8 pair
        let line = c.next_line().unwrap().unwrap();
        assert!(line.contains('\u{FFFD}'));
    }

    #[test]
    fn overlong_line_errors_and_resets() {
        let mut c = LineCodec::new();
        c.extend(&vec![b'x'; MAX_LINE + 1]);
        assert!(matches!(c.next_line(), Err(ProtoError::LineTooLong { .. })));
        // State is cleared so the session can resync.
        assert_eq!(c.buffered(), 0);
    }

    #[test]
    fn take_remainder_flushes_unterminated_tail() {
        let mut c = LineCodec::new();
        c.extend(b"221 Goodbye");
        assert_eq!(c.next_line().unwrap(), None);
        assert_eq!(c.take_remainder(), Some("221 Goodbye".into()));
        assert_eq!(c.take_remainder(), None);
    }
}
