//! Error type shared by the protocol parsers.

use std::fmt;

/// Error returned by the parsers in this crate.
///
/// Every variant carries enough context to report *what* failed to parse;
/// the enumerator uses this to distinguish "the server is broken" from
/// "our parser is too strict" when hardening against real-world quirks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// A command line could not be parsed.
    BadCommand {
        /// The offending input line (truncated to 128 bytes).
        input: String,
    },
    /// A reply line did not start with a three-digit code.
    BadReplyCode {
        /// The offending input line (truncated to 128 bytes).
        input: String,
    },
    /// A multiline reply was truncated before its terminating line.
    TruncatedReply,
    /// A `PORT`/`PASV` host-port tuple was malformed.
    BadHostPort {
        /// The offending argument text.
        input: String,
    },
    /// A directory-listing line matched no known format.
    BadListing {
        /// The offending listing line (truncated to 128 bytes).
        input: String,
    },
    /// An FTP pathname contained an illegal sequence (embedded NUL or CR).
    BadPath {
        /// The offending path.
        input: String,
    },
    /// Input line exceeded the protocol maximum accepted by the codec.
    LineTooLong {
        /// Number of bytes observed before giving up.
        len: usize,
    },
}

impl ProtoError {
    pub(crate) fn bad_command(input: &str) -> Self {
        ProtoError::BadCommand { input: truncate(input) }
    }
    pub(crate) fn bad_reply(input: &str) -> Self {
        ProtoError::BadReplyCode { input: truncate(input) }
    }
    pub(crate) fn bad_host_port(input: &str) -> Self {
        ProtoError::BadHostPort { input: truncate(input) }
    }
    pub(crate) fn bad_listing(input: &str) -> Self {
        ProtoError::BadListing { input: truncate(input) }
    }
    pub(crate) fn bad_path(input: &str) -> Self {
        ProtoError::BadPath { input: truncate(input) }
    }
}

fn truncate(s: &str) -> String {
    if s.len() <= 128 {
        s.to_owned()
    } else {
        let mut end = 128;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        s[..end].to_owned()
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadCommand { input } => write!(f, "unparseable FTP command: {input:?}"),
            ProtoError::BadReplyCode { input } => {
                write!(f, "reply line missing three-digit code: {input:?}")
            }
            ProtoError::TruncatedReply => write!(f, "multiline reply truncated"),
            ProtoError::BadHostPort { input } => {
                write!(f, "malformed host-port tuple: {input:?}")
            }
            ProtoError::BadListing { input } => {
                write!(f, "listing line matched no known format: {input:?}")
            }
            ProtoError::BadPath { input } => write!(f, "illegal FTP pathname: {input:?}"),
            ProtoError::LineTooLong { len } => {
                write!(f, "control-channel line exceeded limit at {len} bytes")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ProtoError::bad_command("FOO");
        let s = e.to_string();
        assert!(s.starts_with("unparseable"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn truncation_is_utf8_safe() {
        let long = "é".repeat(200);
        let e = ProtoError::bad_command(&long);
        match e {
            ProtoError::BadCommand { input } => assert!(input.len() <= 128),
            _ => unreachable!(),
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<ProtoError>();
    }
}
