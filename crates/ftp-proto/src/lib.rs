//! FTP wire-protocol types and parsers.
//!
//! This crate implements the protocol layer needed by every other part of
//! the *FTP: The Forgotten Cloud* reproduction: client commands, server
//! replies (including multiline replies), `PORT`/`PASV`/`EPRT`/`EPSV`
//! host-port arguments, directory-listing parsers for the formats found in
//! the wild (UNIX `ls -l`, MS-DOS/IIS, EPLF, and `MLSD` fact lines),
//! server banners with software/version extraction, and a `robots.txt`
//! parser following Google's specification (as the paper's enumerator
//! did).
//!
//! Everything here is pure and deterministic: no I/O, no clocks. The
//! protocol layer is shared between the simulated servers (`ftpd`), the
//! enumerator, and the honeypots, so the reproduction exercises a single
//! implementation of FTP framing on both sides of every connection — just
//! as a real-world deployment exercises a real TCP stack on both sides.
//!
//! # Example
//!
//! ```
//! use ftp_proto::{Command, Reply};
//!
//! let cmd: Command = "RETR robots.txt".parse()?;
//! assert_eq!(cmd, Command::Retr("robots.txt".into()));
//!
//! let reply = Reply::parse_line("220 ProFTPD 1.3.5 Server ready.")?;
//! assert!(reply.code().is_positive_completion());
//! # Ok::<(), ftp_proto::ProtoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banner;
pub mod codec;
pub mod command;
pub mod error;
pub mod hostport;
pub mod listing;
pub mod path;
pub mod reply;
pub mod robots;

pub use banner::{Banner, ServerSoftware, SoftwareFamily};
pub use codec::{lossy_append, strip_iac, LineCodec};
pub use command::Command;
pub use error::ProtoError;
pub use hostport::HostPort;
pub use listing::{ListingEntry, ListingFormat, Permissions};
pub use path::FtpPath;
pub use reply::{Reply, ReplyBuf, ReplyCode, ReplyRef};
pub use robots::Robots;
