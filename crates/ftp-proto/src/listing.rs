//! Directory-listing formats: UNIX `ls -l`, MS-DOS/IIS, EPLF and MLSD.
//!
//! `LIST` output is not standardized; the paper's enumerator had to parse
//! whatever each implementation produced. This module implements both
//! directions — parsing (for the enumerator and honeypot log analysis)
//! and rendering (for the simulated servers) — so the reproduction's
//! client and servers exercise realistic, mutually-independent code
//! paths: servers render a format, the enumerator sniffs and parses it.
//!
//! The `# Readable` / `# Non-readable` / `# Unk-readability` columns of
//! the paper's Table IX come straight from the permission bits carried
//! here: UNIX-style listings expose an all-users read bit, DOS-style
//! listings do not (the paper labels those files "unk-readability").

use crate::error::ProtoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The listing dialect a server emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ListingFormat {
    /// `drwxr-xr-x  2 ftp ftp 4096 Jun 18  2015 pub` — the common case.
    #[default]
    Unix,
    /// `06-18-15  09:43AM       <DIR>          aspnet_client` — IIS/DOS.
    Dos,
    /// `+i8388621.48594,m825718503,r,s280,\tdjb.html` — EPLF.
    Eplf,
    /// RFC 3659 `MLSD` fact lines.
    Mlsd,
}

/// Whether the anonymous (all-users) read permission could be determined.
///
/// Mirrors the paper's three-way readability split (§III): UNIX listings
/// carry an "other" read bit; DOS-style listings carry no permissions at
/// all, so files on most Windows-based servers are *unk-readability*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Readability {
    /// All-users read bit set.
    Readable,
    /// All-users read bit clear.
    NonReadable,
    /// Listing format exposes no permission information.
    Unknown,
}

/// UNIX permission bits as shown in an `ls -l` mode string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Permissions {
    bits: u16,
}

impl Permissions {
    /// Permissions from the low nine mode bits (`0o755`-style).
    pub fn from_mode(mode: u16) -> Self {
        Permissions { bits: mode & 0o777 }
    }

    /// The standard anonymous-directory permissions, `0o755`.
    pub fn public_dir() -> Self {
        Permissions::from_mode(0o755)
    }

    /// World-readable file permissions, `0o644`.
    pub fn public_file() -> Self {
        Permissions::from_mode(0o644)
    }

    /// Owner-only file permissions, `0o600`.
    pub fn private_file() -> Self {
        Permissions::from_mode(0o600)
    }

    /// The raw nine permission bits.
    pub fn mode(&self) -> u16 {
        self.bits
    }

    /// True if the all-users ("other") read bit is set — the bit the
    /// paper used to decide whether an anonymous user could likely
    /// retrieve a file.
    pub fn other_read(&self) -> bool {
        self.bits & 0o004 != 0
    }

    /// True if the all-users write bit is set.
    pub fn other_write(&self) -> bool {
        self.bits & 0o002 != 0
    }

    /// Renders the nine-character `rwxr-xr-x` suffix of a mode string.
    pub fn to_rwx(&self) -> String {
        let mut s = String::with_capacity(9);
        let _ = fmt::Write::write_fmt(&mut s, format_args!("{self}"));
        s
    }

    /// Parses the nine-character `rwx` triple-group; returns `None` on
    /// unexpected characters (setuid `s`/`t` letters are accepted).
    pub fn parse_rwx(s: &str) -> Option<Self> {
        // Mode strings are ASCII; a multi-byte character can never match
        // an expected letter, so byte-wise inspection rejects exactly the
        // same inputs a char-wise scan would.
        let bytes = s.as_bytes();
        if bytes.len() != 9 {
            return None;
        }
        let mut bits = 0u16;
        for (i, &c) in bytes.iter().enumerate() {
            let expected = [b'r', b'w', b'x'][i % 3];
            let set = match c {
                b'-' => false,
                b's' | b't' if expected == b'x' => true,
                b'S' | b'T' if expected == b'x' => false,
                c if c == expected => true,
                _ => return None,
            };
            if set {
                bits |= 1 << (8 - i);
            }
        }
        Some(Permissions { bits })
    }
}

impl fmt::Display for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use fmt::Write as _;
        for shift in [6u16, 3, 0] {
            let trio = (self.bits >> shift) & 0o7;
            f.write_char(if trio & 0o4 != 0 { 'r' } else { '-' })?;
            f.write_char(if trio & 0o2 != 0 { 'w' } else { '-' })?;
            f.write_char(if trio & 0o1 != 0 { 'x' } else { '-' })?;
        }
        Ok(())
    }
}

/// One parsed entry from a directory listing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListingEntry {
    /// File or directory name (final component only).
    pub name: String,
    /// True for directories.
    pub is_dir: bool,
    /// Size in bytes when the format exposes it.
    pub size: Option<u64>,
    /// UNIX permissions when the format exposes them.
    pub permissions: Option<Permissions>,
    /// Owner name when the format exposes it (e.g. `ftp`).
    pub owner: Option<String>,
    /// Raw modification-time text as shown in the listing.
    pub mtime: Option<String>,
    /// True for symlinks (UNIX `l` type); the link target is stripped.
    pub is_symlink: bool,
}

impl ListingEntry {
    /// Creates a directory entry with only a name (as from `NLST`).
    pub fn bare(name: impl Into<String>, is_dir: bool) -> Self {
        ListingEntry {
            name: name.into(),
            is_dir,
            size: None,
            permissions: None,
            owner: None,
            mtime: None,
            is_symlink: false,
        }
    }

    /// The paper's three-way readability classification for this entry.
    pub fn readability(&self) -> Readability {
        match self.permissions {
            Some(p) if p.other_read() => Readability::Readable,
            Some(_) => Readability::NonReadable,
            None => Readability::Unknown,
        }
    }
}

/// Modification-time text as parsed from a listing line, kept as slices
/// of the source columns so the borrowed parse path allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtimeRef<'a> {
    /// Format exposes no mtime.
    None,
    /// A single contiguous slice (EPLF `m…` fact, MLSD `modify=` value).
    Raw(&'a str),
    /// UNIX `ls -l` columns, conventionally joined as `month day tail`.
    Unix {
        /// Month name column (`Jun`).
        month: &'a str,
        /// Day-of-month column (`18`).
        day: &'a str,
        /// Time-or-year column (`09:43` or `2015`).
        tail: &'a str,
    },
    /// DOS columns, conventionally joined as `date time`.
    Dos {
        /// Date column (`06-18-15`).
        date: &'a str,
        /// Time column (`09:43AM`).
        time: &'a str,
    },
}

impl MtimeRef<'_> {
    /// The owned single-string form [`ListingEntry::mtime`] carries.
    pub fn to_owned_string(self) -> Option<String> {
        match self {
            MtimeRef::None => None,
            MtimeRef::Raw(s) => Some(s.to_owned()),
            MtimeRef::Unix { month, day, tail } => Some(format!("{month} {day} {tail}")),
            MtimeRef::Dos { date, time } => Some(format!("{date} {time}")),
        }
    }
}

/// A borrowed parsed listing entry: every text field is a slice of the
/// source line, so parsing a 10 000-entry directory body allocates
/// nothing — the enumerator copies the fields it keeps straight into its
/// columnar `FileTable` arenas.
#[derive(Debug, Clone, Copy)]
pub struct ParsedEntryRef<'a> {
    /// File or directory name (final component only).
    pub name: &'a str,
    /// True for directories.
    pub is_dir: bool,
    /// Size in bytes when the format exposes it.
    pub size: Option<u64>,
    /// UNIX permissions when the format exposes them.
    pub permissions: Option<Permissions>,
    /// Owner name when the format exposes it (e.g. `ftp`).
    pub owner: Option<&'a str>,
    /// Modification-time columns when the format exposes them.
    pub mtime: MtimeRef<'a>,
    /// True for symlinks (UNIX `l` type); the link target is stripped.
    pub is_symlink: bool,
}

impl ParsedEntryRef<'_> {
    /// The paper's three-way readability classification for this entry.
    pub fn readability(&self) -> Readability {
        match self.permissions {
            Some(p) if p.other_read() => Readability::Readable,
            Some(_) => Readability::NonReadable,
            None => Readability::Unknown,
        }
    }

    /// Copies into an owned [`ListingEntry`].
    pub fn to_owned_entry(&self) -> ListingEntry {
        ListingEntry {
            name: self.name.to_owned(),
            is_dir: self.is_dir,
            size: self.size,
            permissions: self.permissions,
            owner: self.owner.map(str::to_owned),
            mtime: self.mtime.to_owned_string(),
            is_symlink: self.is_symlink,
        }
    }
}

/// Parses one listing line, trying the given format first and falling
/// back to sniffing the others — the tolerance strategy the paper's
/// enumerator converged on after iterative testing against live servers.
///
/// Lines that are recognized as noise (e.g. `total 52` headers) return
/// `Ok(None)`.
///
/// # Errors
///
/// Returns [`ProtoError::BadListing`] if no parser recognizes the line.
pub fn parse_line(line: &str, hint: ListingFormat) -> Result<Option<ListingEntry>, ProtoError> {
    Ok(parse_line_ref(line, hint)?.map(|e| e.to_owned_entry()))
}

/// Borrowed-view variant of [`parse_line`]: the returned entry's text
/// fields are slices of `line`, so the per-line hot path allocates
/// nothing.
///
/// # Errors
///
/// Returns [`ProtoError::BadListing`] if no parser recognizes the line.
pub fn parse_line_ref(
    line: &str,
    hint: ListingFormat,
) -> Result<Option<ParsedEntryRef<'_>>, ProtoError> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() {
        return Ok(None);
    }
    let order: [ListingFormat; 4] = match hint {
        ListingFormat::Unix => {
            [ListingFormat::Unix, ListingFormat::Dos, ListingFormat::Eplf, ListingFormat::Mlsd]
        }
        ListingFormat::Dos => {
            [ListingFormat::Dos, ListingFormat::Unix, ListingFormat::Eplf, ListingFormat::Mlsd]
        }
        ListingFormat::Eplf => {
            [ListingFormat::Eplf, ListingFormat::Unix, ListingFormat::Dos, ListingFormat::Mlsd]
        }
        ListingFormat::Mlsd => {
            [ListingFormat::Mlsd, ListingFormat::Unix, ListingFormat::Dos, ListingFormat::Eplf]
        }
    };
    if line.starts_with("total ") && line[6..].trim().chars().all(|c| c.is_ascii_digit()) {
        return Ok(None);
    }
    for fmt in order {
        let parsed = match fmt {
            ListingFormat::Unix => parse_unix(line),
            ListingFormat::Dos => parse_dos(line),
            ListingFormat::Eplf => parse_eplf(line),
            ListingFormat::Mlsd => parse_mlsd(line),
        };
        if let Some(e) = parsed {
            return Ok(Some(e));
        }
    }
    Err(ProtoError::bad_listing(line))
}

/// Parses a full multi-line listing body, skipping noise lines and
/// collecting per-line failures separately so a single weird line does
/// not abort a 10 000-entry directory (a real-world lesson from §III).
pub fn parse_body(body: &str, hint: ListingFormat) -> (Vec<ListingEntry>, usize) {
    let mut entries = Vec::new();
    let mut failures = 0;
    for line in body.lines() {
        match parse_line(line, hint) {
            Ok(Some(e)) => entries.push(e),
            Ok(None) => {}
            Err(_) => failures += 1,
        }
    }
    (entries, failures)
}

fn parse_unix(line: &str) -> Option<ParsedEntryRef<'_>> {
    // drwxr-xr-x   2 ftp      ftp          4096 Jun 18  2015 pub
    // -rw-r--r--   1 1000     1000      1048576 Jun 18 09:43 photo.jpg
    // lrwxrwxrwx   1 root     root           11 Jan  1  2014 www -> /var/www
    let bytes = line.as_bytes();
    if bytes.len() < 11 {
        return None;
    }
    let type_ch = bytes[0] as char;
    let (is_dir, is_symlink) = match type_ch {
        'd' => (true, false),
        '-' => (false, false),
        'l' => (false, true),
        'b' | 'c' | 'p' | 's' => (false, false),
        _ => return None,
    };
    let perms = Permissions::parse_rwx(&line[1..10])?;
    let rest = &line[10..];
    // Tokenize: links owner group size month day time-or-year name...
    let mut tokens = rest.split_whitespace();
    let _links = tokens.next()?;
    let owner = tokens.next()?;
    let group_or_size = tokens.next()?;
    // Some embedded servers omit the group column; detect by checking if
    // the next token after `group_or_size` is a month name.
    let mut size_tok;
    let month;
    let maybe = tokens.next()?;
    if is_month(maybe) {
        size_tok = group_or_size;
        month = maybe;
    } else {
        size_tok = maybe;
        let m = tokens.next()?;
        if !is_month(m) {
            // device files have "maj, min" instead of size
            size_tok = m;
            let m2 = tokens.next()?;
            if !is_month(m2) {
                return None;
            }
            month = m2;
        } else {
            month = m;
        }
    }
    let day = tokens.next()?;
    let time_or_year = tokens.next()?;
    let size: Option<u64> = size_tok.trim_end_matches(',').parse().ok();
    // The name is everything after the time column in the original line.
    let time_pos = find_token_end(line, time_or_year)?;
    let mut name = line[time_pos..].trim_start();
    if name.is_empty() {
        return None;
    }
    if is_symlink {
        if let Some(ix) = name.find(" -> ") {
            name = &name[..ix];
        }
    }
    Some(ParsedEntryRef {
        name,
        is_dir,
        size,
        permissions: Some(perms),
        owner: Some(owner),
        mtime: MtimeRef::Unix { month, day, tail: time_or_year },
        is_symlink,
    })
}

fn is_month(s: &str) -> bool {
    matches!(
        s,
        "Jan" | "Feb" | "Mar" | "Apr" | "May" | "Jun" | "Jul" | "Aug" | "Sep" | "Oct" | "Nov"
            | "Dec"
    )
}

/// Byte offset just past the *time column* occurrence of `tok` in `line`.
fn find_token_end(line: &str, tok: &str) -> Option<usize> {
    // Search from the right: the name may itself contain month-like text,
    // but the time/year column precedes the name.
    let mut search_end = line.len();
    while let Some(pos) = line[..search_end].rfind(tok) {
        let before_ok = pos == 0 || line.as_bytes()[pos - 1] == b' ';
        let after = pos + tok.len();
        let after_ok = after >= line.len() || line.as_bytes()[after] == b' ';
        if before_ok && after_ok {
            // Heuristic: the name follows; ensure something follows.
            if after < line.len() {
                return Some(after);
            }
        }
        if pos == 0 {
            break;
        }
        search_end = pos;
    }
    None
}

fn parse_dos(line: &str) -> Option<ParsedEntryRef<'_>> {
    // 06-18-15  09:43AM       <DIR>          aspnet_client
    // 06-18-15  09:43AM              1043901 products.mdb
    let mut tokens = line.split_whitespace();
    let date = tokens.next()?;
    let time = tokens.next()?;
    if !looks_like_dos_date(date) || !looks_like_dos_time(time) {
        return None;
    }
    let size_or_dir = tokens.next()?;
    let (is_dir, size) = if size_or_dir.eq_ignore_ascii_case("<dir>") {
        (true, None)
    } else {
        (false, size_or_dir.parse::<u64>().ok())
    };
    if !is_dir && size.is_none() {
        return None;
    }
    let name_start = find_token_end(line, size_or_dir)?;
    let name = line[name_start..].trim_start();
    if name.is_empty() {
        return None;
    }
    Some(ParsedEntryRef {
        name,
        is_dir,
        size,
        permissions: None,
        owner: None,
        mtime: MtimeRef::Dos { date, time },
        is_symlink: false,
    })
}

fn looks_like_dos_date(s: &str) -> bool {
    let b = s.as_bytes();
    (b.len() == 8 || b.len() == 10)
        && b[2] == b'-'
        && b[5] == b'-'
        && b.iter().filter(|c| c.is_ascii_digit()).count() >= 6
}

fn looks_like_dos_time(s: &str) -> bool {
    let s = s.to_ascii_uppercase();
    (s.ends_with("AM") || s.ends_with("PM")) && s.contains(':')
}

fn parse_eplf(line: &str) -> Option<ParsedEntryRef<'_>> {
    // +i8388621.48594,m825718503,r,s280,\tdjb.html
    let rest = line.strip_prefix('+')?;
    let tab = rest.find('\t')?;
    let (facts, name) = (&rest[..tab], &rest[tab + 1..]);
    if name.is_empty() {
        return None;
    }
    let mut is_dir = false;
    let mut size = None;
    let mut mtime = MtimeRef::None;
    for fact in facts.split(',') {
        if fact == "/" {
            is_dir = true;
        } else if let Some(s) = fact.strip_prefix('s') {
            size = s.parse::<u64>().ok();
        } else if let Some(m) = fact.strip_prefix('m') {
            mtime = MtimeRef::Raw(m);
        }
    }
    Some(ParsedEntryRef {
        name,
        is_dir,
        size,
        permissions: None,
        owner: None,
        mtime,
        is_symlink: false,
    })
}

fn parse_mlsd(line: &str) -> Option<ParsedEntryRef<'_>> {
    // type=dir;modify=20150618094300;perm=el; pub
    let space = line.find("; ")?;
    let (facts, name) = (&line[..space + 1], &line[space + 2..]);
    if name.is_empty() || !facts.contains('=') {
        return None;
    }
    let mut is_dir = false;
    let mut size = None;
    let mut mtime = MtimeRef::None;
    let mut seen_type = false;
    for fact in facts.split(';') {
        let Some((k, v)) = fact.split_once('=') else { continue };
        let k = k.trim();
        if k.eq_ignore_ascii_case("type") {
            seen_type = true;
            is_dir = matches!(v, "dir" | "cdir" | "pdir");
        } else if k.eq_ignore_ascii_case("size") {
            size = v.parse::<u64>().ok();
        } else if k.eq_ignore_ascii_case("modify") {
            mtime = MtimeRef::Raw(v);
        }
    }
    if !seen_type && size.is_none() && matches!(mtime, MtimeRef::None) {
        return None;
    }
    Some(ParsedEntryRef {
        name,
        is_dir,
        size,
        permissions: None,
        owner: None,
        mtime,
        is_symlink: false,
    })
}

/// A borrowed view of a listing entry, for rendering without building an
/// owned [`ListingEntry`] first — the simulated servers render straight
/// from their VFS metadata through this.
#[derive(Debug, Clone, Copy)]
pub struct ListingEntryRef<'a> {
    /// File or directory name (final component only).
    pub name: &'a str,
    /// True for directories.
    pub is_dir: bool,
    /// Size in bytes when known.
    pub size: Option<u64>,
    /// UNIX permissions when known.
    pub permissions: Option<Permissions>,
    /// Owner name when known.
    pub owner: Option<&'a str>,
    /// Modification-time text when known.
    pub mtime: Option<&'a str>,
}

impl ListingEntry {
    /// The borrowed view of this entry, as [`render_line_into`] takes.
    pub fn as_entry_ref(&self) -> ListingEntryRef<'_> {
        ListingEntryRef {
            name: &self.name,
            is_dir: self.is_dir,
            size: self.size,
            permissions: self.permissions,
            owner: self.owner.as_deref(),
            mtime: self.mtime.as_deref(),
        }
    }
}

/// Renders a listing line in the given format — used by the simulated
/// servers so the enumerator parses realistic output it did not itself
/// produce.
pub fn render_line(entry: &ListingEntry, format: ListingFormat) -> String {
    let mut out = String::new();
    render_line_into(entry.as_entry_ref(), format, &mut out);
    out
}

/// Appends one rendered listing line (no trailing CRLF) to `out`.
///
/// This is the allocation-free path behind [`render_line`]: the hot
/// server loop renders whole directory bodies into one reused buffer.
pub fn render_line_into(entry: ListingEntryRef<'_>, format: ListingFormat, out: &mut String) {
    use fmt::Write as _;
    match format {
        ListingFormat::Unix => {
            let perms = entry.permissions.unwrap_or_else(Permissions::public_file);
            let t = if entry.is_dir { 'd' } else { '-' };
            let owner = entry.owner.unwrap_or("ftp");
            let size = entry.size.unwrap_or(if entry.is_dir { 4096 } else { 0 });
            let mtime = entry.mtime.unwrap_or("Jun 18  2015");
            let _ = write!(
                out,
                "{t}{perms}   1 {owner:<8} {owner:<8} {size:>12} {mtime} {}",
                entry.name
            );
        }
        ListingFormat::Dos => {
            // Only reuse the entry's mtime when it is already DOS-shaped;
            // a UNIX "Jun 18  2015" string would render an unparseable line.
            let mtime = match entry.mtime {
                Some(m)
                    if m.split_whitespace().next().map(looks_like_dos_date).unwrap_or(false) =>
                {
                    m
                }
                _ => "06-18-15 09:43AM",
            };
            if entry.is_dir {
                let _ = write!(out, "{mtime}       <DIR>          {}", entry.name);
            } else {
                let _ = write!(out, "{mtime} {:>20} {}", entry.size.unwrap_or(0), entry.name);
            }
        }
        ListingFormat::Eplf => {
            out.push('+');
            out.push_str(if entry.is_dir { "/," } else { "r," });
            if let Some(s) = entry.size {
                let _ = write!(out, "s{s},");
            }
            out.push('\t');
            out.push_str(entry.name);
        }
        ListingFormat::Mlsd => {
            let t = if entry.is_dir { "dir" } else { "file" };
            let _ = write!(out, "type={t};");
            if let Some(s) = entry.size {
                let _ = write!(out, "size={s};");
            }
            let _ = write!(out, "modify=20150618094300; {}", entry.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions_roundtrip() {
        for mode in [0o777u16, 0o755, 0o644, 0o600, 0o000, 0o700] {
            let p = Permissions::from_mode(mode);
            assert_eq!(Permissions::parse_rwx(&p.to_rwx()).unwrap(), p);
        }
    }

    #[test]
    fn permissions_setuid_letters() {
        let p = Permissions::parse_rwx("rwsr-xr-t").unwrap();
        assert!(p.other_read());
        assert_eq!(p.mode() & 0o100, 0o100);
        assert!(Permissions::parse_rwx("rwSr-xr-T").is_some());
        assert!(Permissions::parse_rwx("rwzr-xr-x").is_none());
    }

    #[test]
    fn unix_dir_line() {
        let e = parse_line("drwxr-xr-x   2 ftp      ftp          4096 Jun 18  2015 pub", ListingFormat::Unix)
            .unwrap()
            .unwrap();
        assert!(e.is_dir);
        assert_eq!(e.name, "pub");
        assert_eq!(e.readability(), Readability::Readable);
        assert_eq!(e.owner.as_deref(), Some("ftp"));
    }

    #[test]
    fn unix_file_with_spaces_in_name() {
        let e = parse_line(
            "-rw-r--r--   1 user     user      1048576 Jun 18 09:43 Tax Return 2014.pdf",
            ListingFormat::Unix,
        )
        .unwrap()
        .unwrap();
        assert_eq!(e.name, "Tax Return 2014.pdf");
        assert_eq!(e.size, Some(1_048_576));
    }

    #[test]
    fn unix_private_file_nonreadable() {
        let e = parse_line(
            "-rw-------   1 root     root          718 Jan  5  2015 shadow",
            ListingFormat::Unix,
        )
        .unwrap()
        .unwrap();
        assert_eq!(e.readability(), Readability::NonReadable);
    }

    #[test]
    fn unix_symlink_strips_target() {
        let e = parse_line(
            "lrwxrwxrwx   1 root     root           11 Jan  1  2014 www -> /var/www",
            ListingFormat::Unix,
        )
        .unwrap()
        .unwrap();
        assert!(e.is_symlink);
        assert_eq!(e.name, "www");
    }

    #[test]
    fn unix_total_header_skipped() {
        assert_eq!(parse_line("total 52", ListingFormat::Unix).unwrap(), None);
    }

    #[test]
    fn dos_lines() {
        let d = parse_line(
            "06-18-15  09:43AM       <DIR>          aspnet_client",
            ListingFormat::Dos,
        )
        .unwrap()
        .unwrap();
        assert!(d.is_dir);
        assert_eq!(d.name, "aspnet_client");
        assert_eq!(d.readability(), Readability::Unknown);

        let f = parse_line("06-18-15  09:43AM              1043901 products.mdb", ListingFormat::Dos)
            .unwrap()
            .unwrap();
        assert!(!f.is_dir);
        assert_eq!(f.size, Some(1_043_901));
        assert_eq!(f.readability(), Readability::Unknown);
    }

    #[test]
    fn eplf_lines() {
        let f = parse_line("+i8388621.48594,m825718503,r,s280,\tdjb.html", ListingFormat::Eplf)
            .unwrap()
            .unwrap();
        assert_eq!(f.name, "djb.html");
        assert_eq!(f.size, Some(280));
        assert!(!f.is_dir);

        let d = parse_line("+i8388621.50690,m824255907,/,\t514", ListingFormat::Eplf)
            .unwrap()
            .unwrap();
        assert!(d.is_dir);
        assert_eq!(d.name, "514");
    }

    #[test]
    fn mlsd_lines() {
        let e = parse_line("type=dir;modify=20150618094300;perm=el; pub", ListingFormat::Mlsd)
            .unwrap()
            .unwrap();
        assert!(e.is_dir);
        assert_eq!(e.name, "pub");
        let f = parse_line("type=file;size=1024;modify=20150618094300; a.txt", ListingFormat::Mlsd)
            .unwrap()
            .unwrap();
        assert_eq!(f.size, Some(1024));
    }

    #[test]
    fn sniffing_falls_back_across_formats() {
        // Ask for DOS but feed UNIX.
        let e = parse_line(
            "drwxr-xr-x   2 ftp      ftp          4096 Jun 18  2015 pub",
            ListingFormat::Dos,
        )
        .unwrap()
        .unwrap();
        assert!(e.is_dir);
    }

    #[test]
    fn unparseable_line_is_error() {
        assert!(parse_line("not a listing at all %%%", ListingFormat::Unix).is_err());
    }

    #[test]
    fn parse_body_counts_failures() {
        let body = "total 8\r\ndrwxr-xr-x   2 ftp ftp 4096 Jun 18  2015 pub\r\n???garbage???\r\n";
        let (entries, failures) = parse_body(body, ListingFormat::Unix);
        assert_eq!(entries.len(), 1);
        assert_eq!(failures, 1);
    }

    #[test]
    fn render_parse_roundtrip_all_formats() {
        let entry = ListingEntry {
            name: "backup.tar.gz".into(),
            is_dir: false,
            size: Some(123_456),
            permissions: Some(Permissions::public_file()),
            owner: Some("ftp".into()),
            mtime: Some("Jun 18  2015".into()),
            is_symlink: false,
        };
        for fmt in [ListingFormat::Unix, ListingFormat::Dos, ListingFormat::Eplf, ListingFormat::Mlsd]
        {
            let line = render_line(&entry, fmt);
            let back = parse_line(&line, fmt).unwrap().unwrap();
            assert_eq!(back.name, entry.name, "{fmt:?}: {line}");
            assert_eq!(back.size, entry.size, "{fmt:?}: {line}");
            assert!(!back.is_dir);
        }
    }

    #[test]
    fn borrowed_parse_matches_owned_parse() {
        let lines = [
            "drwxr-xr-x   2 ftp      ftp          4096 Jun 18  2015 pub",
            "-rw-r--r--   1 user     user      1048576 Jun 18 09:43 photo.jpg",
            "lrwxrwxrwx   1 root     root           11 Jan  1  2014 www -> /var/www",
            "06-18-15  09:43AM       <DIR>          aspnet_client",
            "06-18-15  09:43AM              1043901 products.mdb",
            "+i8388621.48594,m825718503,r,s280,\tdjb.html",
            "type=dir;modify=20150618094300;perm=el; pub",
        ];
        for line in lines {
            let owned = parse_line(line, ListingFormat::Unix).unwrap().unwrap();
            let borrowed = parse_line_ref(line, ListingFormat::Unix).unwrap().unwrap();
            assert_eq!(borrowed.to_owned_entry(), owned, "{line}");
            assert_eq!(borrowed.readability(), owned.readability(), "{line}");
        }
        assert!(parse_line_ref("total 52", ListingFormat::Unix).unwrap().is_none());
        assert!(parse_line_ref("garbage %%%", ListingFormat::Unix).is_err());
    }

    #[test]
    fn render_parse_roundtrip_dir() {
        let entry = ListingEntry {
            name: "pub".into(),
            is_dir: true,
            size: None,
            permissions: Some(Permissions::public_dir()),
            owner: Some("ftp".into()),
            mtime: None,
            is_symlink: false,
        };
        for fmt in [ListingFormat::Unix, ListingFormat::Dos, ListingFormat::Eplf, ListingFormat::Mlsd]
        {
            let line = render_line(&entry, fmt);
            let back = parse_line(&line, fmt).unwrap().unwrap();
            assert!(back.is_dir, "{fmt:?}: {line}");
            assert_eq!(back.name, "pub");
        }
    }
}
