//! FTP banner analysis: software identification and version extraction.
//!
//! Banners are "arbitrary text" (§III), but they are the study's main
//! fingerprinting signal: Table XI (CVE exposure) is computed entirely
//! from version strings presented in banners, and the device tables
//! (IV, V, VII) rely on banner substrings among other signals. This
//! module recognizes the implementations the paper names plus the device
//! banners it reports (e.g. the Ramnit botnet's
//! `220 220 RMNetwork FTP`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Software families the study distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SoftwareFamily {
    /// ProFTPD.
    ProFtpd,
    /// Pure-FTPd.
    PureFtpd,
    /// vsFTPd.
    VsFtpd,
    /// FileZilla Server.
    FileZilla,
    /// Serv-U.
    ServU,
    /// Microsoft FTP Service (IIS).
    MicrosoftFtp,
    /// wu-ftpd (legacy).
    WuFtpd,
    /// Device/embedded firmware with a recognizable banner.
    Embedded,
    /// The Ramnit botnet's FTP backdoor (`220 220 RMNetwork FTP`).
    Ramnit,
    /// Anything else.
    Unknown,
}

impl fmt::Display for SoftwareFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SoftwareFamily::ProFtpd => "ProFTPD",
            SoftwareFamily::PureFtpd => "Pure-FTPd",
            SoftwareFamily::VsFtpd => "vsFTPd",
            SoftwareFamily::FileZilla => "FileZilla",
            SoftwareFamily::ServU => "Serv-U",
            SoftwareFamily::MicrosoftFtp => "Microsoft FTP",
            SoftwareFamily::WuFtpd => "wu-ftpd",
            SoftwareFamily::Embedded => "embedded",
            SoftwareFamily::Ramnit => "Ramnit",
            SoftwareFamily::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// A dotted software version, e.g. `1.3.5` or `2.0.8a`.
///
/// Comparison is numeric per component with an optional trailing letter
/// (so `1.3.3g < 1.3.4` and `1.0.0 < 1.0.0a`), matching how CVE ranges
/// for the FTP daemons in Table XI are expressed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Version {
    components: Vec<(u32, Option<char>)>,
}

impl Version {
    /// Parses a dotted version from text; returns `None` when the text
    /// contains no leading digit.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if !s.starts_with(|c: char| c.is_ascii_digit()) {
            return None;
        }
        let mut components = Vec::new();
        for part in s.split('.') {
            let digits: String = part.chars().take_while(|c| c.is_ascii_digit()).collect();
            if digits.is_empty() {
                break;
            }
            let num: u32 = digits.parse().ok()?;
            let letter = part.chars().nth(digits.len()).filter(|c| c.is_ascii_alphabetic());
            let stop = letter.is_some() || digits.len() < part.len();
            components.push((num, letter.map(|c| c.to_ascii_lowercase())));
            if stop {
                break;
            }
        }
        if components.is_empty() {
            None
        } else {
            Some(Version { components })
        }
    }

    /// Convenience constructor from numeric components.
    pub fn from_parts(parts: &[u32]) -> Self {
        Version { components: parts.iter().map(|&n| (n, None)).collect() }
    }

    /// The numeric components (letters dropped).
    pub fn parts(&self) -> Vec<u32> {
        self.components.iter().map(|&(n, _)| n).collect()
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (n, letter)) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{n}")?;
            if let Some(c) = letter {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// Identified server software: family plus optional version.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServerSoftware {
    /// The recognized family.
    pub family: SoftwareFamily,
    /// Extracted version, when the banner includes one.
    pub version: Option<Version>,
}

/// A parsed FTP greeting banner.
///
/// # Example
///
/// ```
/// use ftp_proto::{Banner, SoftwareFamily};
///
/// let b = Banner::parse("ProFTPD 1.3.5 Server (Debian) [::ffff:10.0.0.1]");
/// assert_eq!(b.software().family, SoftwareFamily::ProFtpd);
/// assert_eq!(b.software().version.as_ref().unwrap().to_string(), "1.3.5");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Banner {
    raw: String,
    software: ServerSoftware,
}

impl Banner {
    /// Parses a banner's text (the body of the `220` greeting).
    pub fn parse(raw: &str) -> Self {
        let software = identify(raw);
        Banner { raw: raw.to_owned(), software }
    }

    /// The raw banner text.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// Identified software.
    pub fn software(&self) -> &ServerSoftware {
        &self.software
    }

    /// Heuristic check for banners that announce "no anonymous access" —
    /// the paper's enumerator parsed banners for such statements and
    /// discontinued login attempts (§III-A).
    pub fn forbids_anonymous(&self) -> bool {
        let lower = self.raw.to_ascii_lowercase();
        (lower.contains("no anonymous") || lower.contains("anonymous access denied")
            || lower.contains("anonymous login is not allowed")
            || lower.contains("authorized users only"))
            && !lower.contains("anonymous ok")
    }

    /// Extracts a private (RFC 1918) IPv4 address displayed in the banner,
    /// if any — §V observed devices leaking their internal addressing this
    /// way, indicating NAT/port-forward deployment.
    pub fn leaked_private_ip(&self) -> Option<std::net::Ipv4Addr> {
        for word in self.raw.split(|c: char| !(c.is_ascii_digit() || c == '.')) {
            if word.matches('.').count() == 3 {
                if let Ok(ip) = word.parse::<std::net::Ipv4Addr>() {
                    if ip.is_private() {
                        return Some(ip);
                    }
                }
            }
        }
        None
    }
}

fn identify(raw: &str) -> ServerSoftware {
    let lower = raw.to_ascii_lowercase();
    // Ramnit's distinctive doubled banner must win over generic matching.
    if lower.contains("rmnetwork ftp") {
        return ServerSoftware { family: SoftwareFamily::Ramnit, version: None };
    }
    let table: &[(&str, SoftwareFamily)] = &[
        ("proftpd", SoftwareFamily::ProFtpd),
        ("pure-ftpd", SoftwareFamily::PureFtpd),
        ("vsftpd", SoftwareFamily::VsFtpd),
        ("filezilla", SoftwareFamily::FileZilla),
        ("serv-u", SoftwareFamily::ServU),
        ("microsoft ftp service", SoftwareFamily::MicrosoftFtp),
        ("wu-", SoftwareFamily::WuFtpd),
    ];
    for (needle, family) in table {
        if let Some(pos) = lower.find(needle) {
            let version = version_after(raw, pos + needle.len());
            return ServerSoftware { family: *family, version };
        }
    }
    // Device-ish banners: contain a known device word but no daemon name.
    let device_words =
        ["nas", "router", "printer", "camera", "dvr", "modem", "fritz!box", "dreambox"];
    if device_words.iter().any(|w| lower.contains(w)) {
        return ServerSoftware { family: SoftwareFamily::Embedded, version: None };
    }
    ServerSoftware { family: SoftwareFamily::Unknown, version: None }
}

/// Finds the first version-looking token at or after byte `from`.
fn version_after(raw: &str, from: usize) -> Option<Version> {
    let tail = &raw[from..];
    for token in tail.split(|c: char| c.is_whitespace() || c == '(' || c == ')' || c == '[') {
        let token = token.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '.');
        // Tolerate the common "v15.1" prefix style (Serv-U, many devices).
        let token = token.strip_prefix(['v', 'V']).unwrap_or(token);
        if token.starts_with(|c: char| c.is_ascii_digit()) && token.contains('.') {
            if let Some(v) = Version::parse(token) {
                return Some(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifies_major_daemons() {
        let cases = [
            ("ProFTPD 1.3.5 Server (Debian)", SoftwareFamily::ProFtpd, Some("1.3.5")),
            ("Welcome to Pure-FTPd [privsep] [TLS]", SoftwareFamily::PureFtpd, None),
            ("(vsFTPd 2.3.4)", SoftwareFamily::VsFtpd, Some("2.3.4")),
            ("FileZilla Server version 0.9.41 beta", SoftwareFamily::FileZilla, Some("0.9.41")),
            ("Serv-U FTP Server v6.4 ready...", SoftwareFamily::ServU, Some("6.4")),
            ("Microsoft FTP Service", SoftwareFamily::MicrosoftFtp, None),
        ];
        for (raw, family, version) in cases {
            let b = Banner::parse(raw);
            assert_eq!(b.software().family, family, "{raw}");
            assert_eq!(
                b.software().version.as_ref().map(|v| v.to_string()),
                version.map(str::to_owned),
                "{raw}"
            );
        }
    }

    #[test]
    fn serv_u_v_prefix_version() {
        // Both "v15.1" and bare "15.1" styles must extract.
        let b = Banner::parse("Serv-U FTP Server 15.1 ready");
        assert_eq!(b.software().version.as_ref().unwrap().to_string(), "15.1");
        let v = Banner::parse("Serv-U FTP Server v15.1 ready");
        assert_eq!(v.software().version.as_ref().unwrap().to_string(), "15.1");
    }

    #[test]
    fn ramnit_banner() {
        let b = Banner::parse("220 RMNetwork FTP");
        assert_eq!(b.software().family, SoftwareFamily::Ramnit);
    }

    #[test]
    fn unknown_banner() {
        let b = Banner::parse("Welcome to my ftp");
        assert_eq!(b.software().family, SoftwareFamily::Unknown);
    }

    #[test]
    fn embedded_device_words() {
        let b = Banner::parse("FRITZ!Box with FTP access ready");
        assert_eq!(b.software().family, SoftwareFamily::Embedded);
    }

    #[test]
    fn forbids_anonymous_detection() {
        assert!(Banner::parse("No anonymous access allowed; members only").forbids_anonymous());
        assert!(Banner::parse("Authorized users only!").forbids_anonymous());
        assert!(!Banner::parse("Anonymous OK, welcome").forbids_anonymous());
        assert!(!Banner::parse("ProFTPD 1.3.5").forbids_anonymous());
    }

    #[test]
    fn private_ip_leak() {
        let b = Banner::parse("NAS-FTP server at 192.168.1.50 ready");
        assert_eq!(b.leaked_private_ip(), Some(std::net::Ipv4Addr::new(192, 168, 1, 50)));
        assert_eq!(Banner::parse("server at 8.8.8.8").leaked_private_ip(), None);
    }

    #[test]
    fn version_ordering() {
        let parse = |s| Version::parse(s).unwrap();
        assert!(parse("1.3.3g") < parse("1.3.4"));
        assert!(parse("1.3.5") > parse("1.3.4a"));
        assert!(parse("2.0.8a") > parse("2.0.8"));
        assert!(parse("1.0.0") == parse("1.0.0"));
        assert!(parse("0.9.41") < parse("0.9.60"));
    }

    #[test]
    fn version_parse_edge_cases() {
        assert_eq!(Version::parse("v1.2"), None);
        assert_eq!(Version::parse(""), None);
        assert_eq!(Version::parse("1").unwrap().to_string(), "1");
        assert_eq!(Version::parse("1.3.5rc3").unwrap().to_string(), "1.3.5r");
    }

    #[test]
    fn version_from_parts_roundtrip() {
        let v = Version::from_parts(&[1, 3, 5]);
        assert_eq!(v.to_string(), "1.3.5");
        assert_eq!(v.parts(), vec![1, 3, 5]);
    }
}
