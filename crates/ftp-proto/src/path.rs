//! FTP pathname handling.
//!
//! A tiny, strict path type used on both sides of the simulation. Paths
//! are always absolute, `/`-separated, with `.` and `..` resolved at
//! construction — the enumerator's breadth-first traversal needs a
//! canonical key per directory to avoid revisiting (and to defeat
//! symlink-style loops), and the servers need confinement: a client must
//! never escape the published root via `..`.

use crate::error::ProtoError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A canonical, absolute FTP pathname.
///
/// # Example
///
/// ```
/// use ftp_proto::FtpPath;
///
/// let p: FtpPath = "/pub/../pub/photos/./2015".parse()?;
/// assert_eq!(p.as_str(), "/pub/photos/2015");
/// assert_eq!(p.file_name(), Some("2015"));
/// # Ok::<(), ftp_proto::ProtoError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FtpPath {
    inner: String,
}

impl FtpPath {
    /// The root directory, `/`.
    pub fn root() -> Self {
        FtpPath { inner: "/".to_owned() }
    }

    /// Resolves `relative` against this path. Absolute inputs replace the
    /// base entirely (as `CWD /abs` does).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadPath`] if the input contains NUL or CR
    /// bytes, or if `..` would climb above the root.
    pub fn join(&self, relative: &str) -> Result<Self, ProtoError> {
        if relative.starts_with('/') {
            relative.parse()
        } else {
            let joined = format!("{}/{relative}", self.inner);
            // Reuse the joined buffer when it is already canonical instead
            // of paying a second copy inside `FromStr`.
            if !joined.contains(['\0', '\r', '\n']) && is_canonical(&joined) {
                return Ok(FtpPath { inner: joined });
            }
            joined.parse()
        }
    }

    /// The canonical string form (always begins with `/`).
    pub fn as_str(&self) -> &str {
        &self.inner
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        if self.inner == "/" {
            None
        } else {
            self.inner.rsplit('/').next()
        }
    }

    /// The parent directory; the root is its own parent.
    pub fn parent(&self) -> FtpPath {
        if self.inner == "/" {
            return self.clone();
        }
        match self.inner.rfind('/') {
            Some(0) => FtpPath::root(),
            Some(ix) => FtpPath { inner: self.inner[..ix].to_owned() },
            None => FtpPath::root(),
        }
    }

    /// Path components, excluding the leading empty segment.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.inner.split('/').filter(|s| !s.is_empty())
    }

    /// Number of components (0 for the root).
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// True if `self` equals `ancestor` or lies beneath it.
    pub fn starts_with(&self, ancestor: &FtpPath) -> bool {
        if ancestor.inner == "/" {
            return true;
        }
        self.inner == ancestor.inner
            || self
                .inner
                .strip_prefix(&ancestor.inner)
                .map(|rest| rest.starts_with('/'))
                .unwrap_or(false)
    }
}

/// Absolute, no empty/`.`/`..` segments, no trailing slash.
fn is_canonical(s: &str) -> bool {
    s.len() > 1
        && s.starts_with('/')
        && !s.ends_with('/')
        && s[1..].split('/').all(|seg| !seg.is_empty() && seg != "." && seg != "..")
}

impl FromStr for FtpPath {
    type Err = ProtoError;

    /// Canonicalizes a path string. Relative inputs are resolved against
    /// the root. `.` segments vanish, `..` pops (never above root —
    /// climbing above root is an error so servers can *detect* escape
    /// attempts rather than silently clamping).
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError::BadPath`] on embedded NUL/CR bytes or a `..`
    /// underflow.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.contains('\0') || s.contains('\r') || s.contains('\n') {
            return Err(ProtoError::bad_path(s));
        }
        // Fast path: input that is already in canonical form (absolute,
        // no empty/`.`/`..` segments, no trailing slash) round-trips as a
        // single copy instead of a segment stack plus a re-join. Server
        // and client hot paths overwhelmingly re-parse canonical output.
        if is_canonical(s) {
            return Ok(FtpPath { inner: s.to_owned() });
        }
        let mut stack: Vec<&str> = Vec::new();
        for seg in s.split('/') {
            match seg {
                "" | "." => {}
                ".." => {
                    if stack.pop().is_none() {
                        return Err(ProtoError::bad_path(s));
                    }
                }
                other => stack.push(other),
            }
        }
        let inner = if stack.is_empty() { "/".to_owned() } else { format!("/{}", stack.join("/")) };
        Ok(FtpPath { inner })
    }
}

impl fmt::Display for FtpPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inner)
    }
}

impl Default for FtpPath {
    fn default() -> Self {
        FtpPath::root()
    }
}

impl AsRef<str> for FtpPath {
    fn as_ref(&self) -> &str {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes() {
        let p: FtpPath = "/a/./b/../c//d/".parse().unwrap();
        assert_eq!(p.as_str(), "/a/c/d");
    }

    #[test]
    fn relative_resolves_from_root() {
        let p: FtpPath = "pub/files".parse().unwrap();
        assert_eq!(p.as_str(), "/pub/files");
    }

    #[test]
    fn join_relative_and_absolute() {
        let base: FtpPath = "/pub".parse().unwrap();
        assert_eq!(base.join("photos").unwrap().as_str(), "/pub/photos");
        assert_eq!(base.join("/etc").unwrap().as_str(), "/etc");
        assert_eq!(base.join("..").unwrap().as_str(), "/");
    }

    #[test]
    fn escape_above_root_is_error() {
        assert!("/..".parse::<FtpPath>().is_err());
        assert!("/a/../../b".parse::<FtpPath>().is_err());
        let base = FtpPath::root();
        assert!(base.join("../../etc/passwd").is_err());
    }

    #[test]
    fn rejects_control_bytes() {
        assert!("/a\0b".parse::<FtpPath>().is_err());
        assert!("/a\rb".parse::<FtpPath>().is_err());
    }

    #[test]
    fn parent_and_file_name() {
        let p: FtpPath = "/a/b/c".parse().unwrap();
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().as_str(), "/a/b");
        assert_eq!(FtpPath::root().parent(), FtpPath::root());
        assert_eq!(FtpPath::root().file_name(), None);
        let top: FtpPath = "/a".parse().unwrap();
        assert_eq!(top.parent(), FtpPath::root());
    }

    #[test]
    fn starts_with_semantics() {
        let a: FtpPath = "/pub/photos".parse().unwrap();
        let b: FtpPath = "/pub".parse().unwrap();
        let c: FtpPath = "/pu".parse().unwrap();
        assert!(a.starts_with(&b));
        assert!(!a.starts_with(&c)); // not a component boundary
        assert!(a.starts_with(&FtpPath::root()));
        assert!(a.starts_with(&a));
        assert!(!b.starts_with(&a));
    }

    #[test]
    fn depth_counts_components() {
        assert_eq!(FtpPath::root().depth(), 0);
        assert_eq!("/a/b/c".parse::<FtpPath>().unwrap().depth(), 3);
    }
}
