//! ZMap-style stateless host discovery over the simulated Internet.
//!
//! The paper's first data-collection stage used ZMap (Durumeric et al.,
//! USENIX Security 2013) to find hosts answering on TCP/21. This crate
//! reproduces ZMap's core ideas:
//!
//! * **Cyclic-group address permutation** ([`cyclic`]): the scan order is
//!   the orbit of a random generator of the multiplicative group modulo
//!   a prime just above the address-space size, so the entire space is
//!   visited exactly once in a pseudorandom order with O(1) state —
//!   ZMap's signature trick (it uses p = 2³² + 15; we select the
//!   smallest suitable prime for the simulated space).
//! * **Blocklists** ([`blocklist`]): reserved ranges and user exclusions
//!   are never probed, matching the paper's ethics section.
//! * **Sharding**: the permutation splits losslessly across shards, as
//!   ZMap's `--shards` does.
//! * **Stateless probing with rate limiting** ([`scanner`]): probes go
//!   out in paced batches; responses classify targets as open / closed /
//!   filtered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

pub mod blocklist;
pub mod cyclic;
pub mod scanner;

pub use blocklist::Blocklist;
pub use cyclic::CyclicPermutation;
pub use scanner::{HashBatch, HashShard, HostDiscovery, ScanConfig, ScanResults};
