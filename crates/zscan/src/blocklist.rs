//! Scan blocklists: reserved ranges plus user exclusion requests.
//!
//! The paper's ethics section (§III-A) describes honoring exclusion
//! requests and preemptively excluding previously opted-out networks;
//! the scanner consults a [`Blocklist`] before every probe.

use netsim::ip::{reserved_ranges, Ipv4Net};
use std::net::Ipv4Addr;

/// A set of excluded prefixes.
#[derive(Debug, Clone, Default)]
pub struct Blocklist {
    ranges: Vec<Ipv4Net>,
}

impl Blocklist {
    /// An empty blocklist (everything scannable).
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard baseline: IANA-reserved and RFC 1918 space.
    pub fn standard() -> Self {
        Blocklist { ranges: reserved_ranges() }
    }

    /// Adds an exclusion (e.g. an opt-out request from an operator).
    pub fn exclude(&mut self, net: Ipv4Net) {
        self.ranges.push(net);
    }

    /// True if `ip` must not be probed.
    pub fn is_blocked(&self, ip: Ipv4Addr) -> bool {
        self.ranges.iter().any(|r| r.contains(ip))
    }

    /// Number of excluded prefixes.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when nothing is excluded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total addresses covered (over-counts overlapping ranges).
    pub fn covered_addresses(&self) -> u64 {
        self.ranges.iter().map(Ipv4Net::size).sum()
    }
}

impl Extend<Ipv4Net> for Blocklist {
    fn extend<T: IntoIterator<Item = Ipv4Net>>(&mut self, iter: T) {
        self.ranges.extend(iter);
    }
}

impl FromIterator<Ipv4Net> for Blocklist {
    fn from_iter<T: IntoIterator<Item = Ipv4Net>>(iter: T) -> Self {
        Blocklist { ranges: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_blocks_private_space() {
        let b = Blocklist::standard();
        assert!(b.is_blocked(Ipv4Addr::new(192, 168, 1, 1)));
        assert!(b.is_blocked(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(b.is_blocked(Ipv4Addr::new(127, 0, 0, 1)));
        assert!(!b.is_blocked(Ipv4Addr::new(141, 212, 0, 1)));
    }

    #[test]
    fn empty_blocks_nothing() {
        let b = Blocklist::new();
        assert!(b.is_empty());
        assert!(!b.is_blocked(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn exclusions_accumulate() {
        let mut b = Blocklist::new();
        b.exclude("141.212.0.0/16".parse().unwrap());
        assert!(b.is_blocked(Ipv4Addr::new(141, 212, 5, 5)));
        assert!(!b.is_blocked(Ipv4Addr::new(141, 213, 5, 5)));
        assert_eq!(b.len(), 1);
        assert_eq!(b.covered_addresses(), 65_536);
    }

    #[test]
    fn collect_from_iterator() {
        let b: Blocklist = ["1.0.0.0/24".parse().unwrap(), "2.0.0.0/24".parse().unwrap()]
            .into_iter()
            .collect();
        assert_eq!(b.len(), 2);
        assert!(b.is_blocked(Ipv4Addr::new(2, 0, 0, 9)));
    }
}
