//! The cyclic multiplicative-group permutation at the heart of ZMap.
//!
//! To scan an address space of size *n* in pseudorandom order without
//! keeping per-address state, ZMap picks a prime *p* > *n*, a random
//! generator *g* of the multiplicative group ℤ*ₚ*, and walks the orbit
//! `x → g·x mod p`, skipping values that fall outside `1..=n`. Because
//! *g* generates the whole group, the walk visits every value in
//! `1..p-1` exactly once; the skipped overshoot is at most `p - n - 1`
//! values per cycle. ZMap uses `p = 2³² + 15` for the full IPv4 space;
//! for smaller simulated spaces we select the smallest prime from a
//! precomputed ladder.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Primes just above successive powers of two, `2^k + δ`.
const PRIME_LADDER: &[u64] = &[
    257,           // 2^8 + 1
    1_031,         // 2^10 + 7
    4_099,         // 2^12 + 3
    16_411,        // 2^14 + 27
    65_537,        // 2^16 + 1
    262_147,       // 2^18 + 3
    1_048_583,     // 2^20 + 7
    4_194_319,     // 2^22 + 15
    16_777_259,    // 2^24 + 43
    67_108_879,    // 2^26 + 15
    268_435_459,   // 2^28 + 3
    1_073_741_827, // 2^30 + 3
    4_294_967_311, // 2^32 + 15 (ZMap's prime)
];

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Prime factors of `n` (distinct), by trial division. `n` here is
/// `p - 1 ≤ 2³² + 14`, so trial division is instantaneous.
fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

fn is_primitive_root(g: u64, p: u64, factors: &[u64]) -> bool {
    factors.iter().all(|&q| powmod(g, (p - 1) / q, p) != 1)
}

/// A full-cycle pseudorandom permutation of `0..size`.
///
/// # Example
///
/// ```
/// use zscan::CyclicPermutation;
///
/// let perm = CyclicPermutation::new(1000, 42);
/// let mut seen: Vec<u64> = perm.iter().collect();
/// assert_eq!(seen.len(), 1000);
/// seen.sort();
/// assert_eq!(seen, (0..1000).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone)]
pub struct CyclicPermutation {
    size: u64,
    p: u64,
    generator: u64,
    start: u64,
}

impl CyclicPermutation {
    /// Builds a permutation of `0..size` using the smallest ladder prime
    /// above `size`, with generator and start position drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds 2³² (the IPv4 space).
    pub fn new(size: u64, seed: u64) -> Self {
        assert!(size > 0, "empty permutation");
        assert!(size <= 1 << 32, "size exceeds the IPv4 space");
        let p = *PRIME_LADDER
            .iter()
            .find(|&&p| p > size)
            .expect("ladder covers sizes up to 2^32");
        let factors = distinct_prime_factors(p - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Find the smallest primitive root, then randomize: root^e is a
        // generator whenever gcd(e, p-1) = 1 — this is how ZMap picks a
        // fresh scan order per run.
        let root = (2..p).find(|&g| is_primitive_root(g, p, &factors)).expect("root exists");
        let generator = loop {
            let e = rng.random_range(1..p - 1);
            if gcd(e, p - 1) == 1 {
                break powmod(root, e, p);
            }
        };
        let start = rng.random_range(1..p);
        CyclicPermutation { size, p, generator, start }
    }

    /// The permutation's domain size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The prime modulus in use.
    pub fn prime(&self) -> u64 {
        self.p
    }

    /// Iterates the full permutation: every value in `0..size` exactly
    /// once, in the generator's orbit order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { perm: self, current: self.start, remaining: self.p - 1 }
    }

    /// Splits the permutation into `shards` interleaved sub-sequences and
    /// returns shard `index` — ZMap's distributed-scan mode. Every value
    /// appears in exactly one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `index >= shards`.
    pub fn shard(&self, index: u64, shards: u64) -> ShardIter<'_> {
        assert!(shards > 0, "need at least one shard");
        assert!(index < shards, "shard index out of range");
        // Shard i visits start·g^i, start·g^(i+s), start·g^(i+2s), …
        let step = powmod(self.generator, shards, self.p);
        let current = mulmod(self.start, powmod(self.generator, index, self.p), self.p);
        let total = self.p - 1;
        let count = total / shards + u64::from(index < total % shards);
        ShardIter { perm: self, step, current, remaining: count }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Iterator over a full [`CyclicPermutation`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    perm: &'a CyclicPermutation,
    current: u64,
    remaining: u64,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.remaining > 0 {
            let v = self.current;
            self.current = mulmod(self.current, self.perm.generator, self.perm.p);
            self.remaining -= 1;
            // Group elements are 1..p-1; map to 0-based and skip overshoot.
            if v - 1 < self.perm.size {
                return Some(v - 1);
            }
        }
        None
    }
}

/// Iterator over one shard of a [`CyclicPermutation`].
#[derive(Debug, Clone)]
pub struct ShardIter<'a> {
    perm: &'a CyclicPermutation,
    step: u64,
    current: u64,
    remaining: u64,
}

impl Iterator for ShardIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.remaining > 0 {
            let v = self.current;
            self.current = mulmod(self.current, self.step, self.perm.p);
            self.remaining -= 1;
            if v - 1 < self.perm.size {
                return Some(v - 1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ladder_entries_are_prime() {
        fn is_prime(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2u64;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for &p in PRIME_LADDER {
            assert!(is_prime(p), "{p} is not prime");
        }
    }

    #[test]
    fn permutation_visits_every_value_once() {
        for size in [1u64, 2, 100, 255, 256, 257, 1000, 5000] {
            let perm = CyclicPermutation::new(size, 7);
            let values: Vec<u64> = perm.iter().collect();
            assert_eq!(values.len() as u64, size, "size {size}");
            let set: HashSet<u64> = values.iter().copied().collect();
            assert_eq!(set.len() as u64, size, "duplicates at size {size}");
            assert!(values.iter().all(|&v| v < size));
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a: Vec<u64> = CyclicPermutation::new(1000, 1).iter().collect();
        let b: Vec<u64> = CyclicPermutation::new(1000, 2).iter().collect();
        assert_ne!(a, b);
        let a2: Vec<u64> = CyclicPermutation::new(1000, 1).iter().collect();
        assert_eq!(a, a2, "same seed reproduces the order");
    }

    #[test]
    fn order_is_not_sequential() {
        let perm = CyclicPermutation::new(10_000, 3);
        let first: Vec<u64> = perm.iter().take(100).collect();
        let sorted = {
            let mut s = first.clone();
            s.sort();
            s
        };
        assert_ne!(first, sorted, "scan order must look random");
    }

    #[test]
    fn shards_partition_the_space() {
        let perm = CyclicPermutation::new(5_000, 11);
        for shards in [1u64, 2, 3, 7] {
            let mut all = Vec::new();
            for i in 0..shards {
                all.extend(perm.shard(i, shards));
            }
            assert_eq!(all.len() as u64, 5_000, "{shards} shards");
            let set: HashSet<u64> = all.into_iter().collect();
            assert_eq!(set.len(), 5_000, "{shards} shards disjoint+complete");
        }
    }

    #[test]
    fn shard_zero_of_one_equals_full_iteration() {
        let perm = CyclicPermutation::new(777, 5);
        let full: Vec<u64> = perm.iter().collect();
        let shard: Vec<u64> = perm.shard(0, 1).collect();
        assert_eq!(full, shard);
    }

    #[test]
    #[should_panic(expected = "shard index out of range")]
    fn shard_index_bounds() {
        let perm = CyclicPermutation::new(100, 1);
        let _ = perm.shard(3, 3);
    }

    #[test]
    fn primitive_root_check() {
        // 3 is a primitive root mod 257; 4 = 2² is not (2 is, 4 has order 64... actually
        // 4's order divides 128). Verify via the helper.
        let factors = distinct_prime_factors(256);
        assert_eq!(factors, vec![2]);
        assert!(is_primitive_root(3, 257, &factors));
        assert!(!is_primitive_root(4, 257, &factors));
    }

    #[test]
    fn full_ipv4_scale_prime_selected() {
        let perm = CyclicPermutation::new(1 << 32, 1);
        assert_eq!(perm.prime(), 4_294_967_311);
        // Don't iterate 2^32 values in a unit test; just sample a few.
        let first: Vec<u64> = perm.iter().take(10).collect();
        assert_eq!(first.len(), 10);
        assert!(first.iter().all(|&v| v < (1u64 << 32)));
    }

    #[test]
    fn mulmod_handles_large_operands() {
        let p = 4_294_967_311u64;
        let a = p - 1;
        assert_eq!(mulmod(a, a, p), 1); // (-1)² = 1 mod p
    }
}
