//! The host-discovery scanner: paced, stateless SYN probing of an
//! address space through the simulator.

use crate::blocklist::Blocklist;
use crate::cyclic::CyclicPermutation;
use netsim::ip::{batch_of, shard_of};
use netsim::{Ctx, Endpoint, Ipv4Net, ProbeStatus, SimDuration};
use std::net::Ipv4Addr;

/// Hash-based shard filter: probe only the addresses that
/// [`netsim::ip::shard_of`] assigns to `index` of `shards` under
/// `seed`.
///
/// Unlike [`ScanConfig::shard`] — which interleaves the *permutation
/// orbit* and is the right tool for splitting one scan across
/// machines that share a world — a hash shard selects a slice of the
/// *address space itself*, matching how the sharded study runner
/// partitions worldgen: each worker's scanner probes exactly the
/// addresses whose hosts were materialized in its simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashShard {
    /// Hash seed; must match the partitioning side (worldgen).
    pub seed: u64,
    /// This shard's index in `0..shards`.
    pub index: u64,
    /// Total shard count.
    pub shards: u64,
}

impl HashShard {
    /// Whether `ip` belongs to this shard.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        shard_of(self.seed, ip, self.shards) == self.index
    }
}

/// Hash-based batch filter: probe only the addresses that
/// [`netsim::ip::batch_of`] assigns to `index` of `batches` under
/// `seed`.
///
/// The streaming study runner sweeps a shard's address slice in
/// sequential batches — one bounded simulator lifetime per batch — and
/// this filter is the scan-side half of that partition (worldgen's
/// batched materialization is the other). It composes with
/// [`HashShard`]: an address is probed when *both* filters accept it,
/// so the `(shard, batch)` grid covers the space exactly once. Note
/// this is unrelated to [`ScanConfig::batch`], which is the pacing
/// burst size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashBatch {
    /// Hash seed; must match the partitioning side (worldgen).
    pub seed: u64,
    /// This batch's index in `0..batches`.
    pub index: u64,
    /// Total batch count.
    pub batches: u64,
}

impl HashBatch {
    /// Whether `ip` belongs to this batch.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        batch_of(self.seed, ip, self.batches) == self.index
    }
}

/// Scanner configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Address space to sweep.
    pub space: Ipv4Net,
    /// TCP port to probe (21 for the study).
    pub port: u16,
    /// Probes sent per pacing tick.
    pub batch: usize,
    /// Interval between pacing ticks.
    pub tick: SimDuration,
    /// Permutation seed (scan order).
    pub seed: u64,
    /// SYN probes sent per address (ZMap's `-P`); extra probes recover
    /// targets whose first probe (or its answer) was lost.
    pub probes_per_target: u8,
    /// Shard `(index, count)` for distributed scans.
    pub shard: (u64, u64),
    /// Optional hash-based address filter (see [`HashShard`]). Applied
    /// on top of `shard`; addresses outside the hash shard are skipped
    /// before pacing, blocklisting, or probing, so counters reflect
    /// only this shard's slice of the space.
    pub hash_shard: Option<HashShard>,
    /// Optional hash-based batch filter (see [`HashBatch`]); composed
    /// with `hash_shard`, selecting one cell of the `(shard, batch)`
    /// grid for streamed studies.
    pub hash_batch: Option<HashBatch>,
    /// Addresses never probed.
    pub blocklist: Blocklist,
    /// Schedule each probe as its own simulator event instead of the
    /// default batched [`netsim::Ctx::probe_batch`] per pacing tick.
    /// The two paths are byte-identical in every observable (results,
    /// callback order, RNG stream); this knob exists so the regression
    /// suite can prove that, and as an escape hatch while doing so.
    pub per_probe_events: bool,
}

impl ScanConfig {
    /// A scan of `space` on TCP/21 with a sensible default rate and the
    /// standard blocklist.
    pub fn tcp21(space: Ipv4Net, seed: u64) -> Self {
        ScanConfig {
            space,
            port: 21,
            batch: 512,
            tick: SimDuration::from_millis(10),
            seed,
            probes_per_target: 1,
            shard: (0, 1),
            hash_shard: None,
            hash_batch: None,
            blocklist: Blocklist::standard(),
            per_probe_events: false,
        }
    }

    /// Materializes the permutation order this config sweeps: the
    /// shard-interleaved orbit, filtered by the hash shard/batch
    /// filters, as permutation indices into `space`. This is exactly
    /// the list [`HostDiscovery::new`] computes; exposing it lets a
    /// caller that runs many scans over one space (the streaming study
    /// runner's batch grid) walk the orbit once and split the result,
    /// feeding each piece to [`HostDiscovery::with_order`].
    pub fn materialize_order(&self) -> Vec<u64> {
        let perm = CyclicPermutation::new(self.space.size(), self.seed);
        let (index, count) = self.shard;
        let space = self.space;
        let hash_shard = self.hash_shard;
        let hash_batch = self.hash_batch;
        perm.shard(index, count)
            .filter(|&ix| {
                let ip = space.addr_at(ix);
                hash_shard.is_none_or(|hs| hs.contains(ip))
                    && hash_batch.is_none_or(|hb| hb.contains(ip))
            })
            .collect()
    }
}

/// Scan outcome counters and the responsive-host list.
#[derive(Debug, Clone, Default)]
pub struct ScanResults {
    /// Addresses that answered SYN-ACK, in discovery order.
    pub open: Vec<Ipv4Addr>,
    /// Count of RST answers.
    pub closed: u64,
    /// Count of timeouts/drops.
    pub filtered: u64,
    /// Probes actually sent (excludes blocklisted skips).
    pub probes_sent: u64,
    /// Addresses skipped due to the blocklist.
    pub blocked: u64,
}

impl ScanResults {
    /// Fraction of probed addresses that were open.
    pub fn hit_rate(&self) -> f64 {
        if self.probes_sent == 0 {
            0.0
        } else {
            self.open.len() as f64 / self.probes_sent as f64
        }
    }
}

/// Per-address probe state, two bytes in the scanner's dense table.
/// `remaining == 0` doubles as "not outstanding" — an address that was
/// never probed and one whose verdict is already recorded look the
/// same, and both ignore further answers.
#[derive(Debug, Clone, Copy, Default)]
struct ProbeSlot {
    /// Answers still expected; 0 = not outstanding.
    remaining: u8,
    /// Best status seen so far, ranked 0 = Filtered, 1 = Closed,
    /// 2 = Open (the scanner's status preference order).
    best: u8,
}

fn rank(s: ProbeStatus) -> u8 {
    match s {
        ProbeStatus::Open => 2,
        ProbeStatus::Closed => 1,
        ProbeStatus::Filtered => 0,
    }
}

/// Stable label for a probe status / verdict, used in host journals.
fn status_label(rank: u8) -> &'static str {
    match rank {
        2 => "open",
        1 => "closed",
        _ => "filtered",
    }
}

/// The scanning endpoint. Register it, bind nothing, and kick it with a
/// timer; when the simulator drains, read [`HostDiscovery`]'s results via
/// the shared handle returned by [`HostDiscovery::new`].
///
/// Probe tracking is ZMap-style stateless: instead of a per-target hash
/// map churning an insert and a remove per address, state lives in a
/// flat [`ProbeSlot`] table indexed by the address's offset in
/// `cfg.space` ([`Ipv4Net::index_of`]) — one allocation for the whole
/// sweep, O(1) untouched lookups, nothing per host.
#[derive(Debug)]
pub struct HostDiscovery {
    cfg: ScanConfig,
    /// Remaining permutation indices (pre-materialized for the shard).
    queue: std::vec::IntoIter<u64>,
    /// Dense per-address probe state, indexed by position in
    /// `cfg.space`.
    slots: Vec<ProbeSlot>,
    /// Addresses still awaiting a verdict (the count of live slots).
    outstanding: usize,
    /// Reused per-tick probe target scratch (one element per probe, so
    /// a K-probes-per-target address appears K times in a row).
    targets: Vec<Ipv4Addr>,
    results: std::rc::Rc<std::cell::RefCell<ScanResults>>,
    done: bool,
}

impl HostDiscovery {
    /// Builds the scanner and returns it with a shared handle to its
    /// results (readable after the simulation drains).
    pub fn new(cfg: ScanConfig) -> (Self, std::rc::Rc<std::cell::RefCell<ScanResults>>) {
        let order = cfg.materialize_order();
        HostDiscovery::with_order(cfg, order)
    }

    /// Builds the scanner around a precomputed probe order (permutation
    /// indices into `cfg.space`, normally from
    /// [`ScanConfig::materialize_order`] or a cached split of it). The
    /// order is trusted as-is: `cfg`'s shard/hash filters are *not*
    /// re-applied.
    pub fn with_order(
        cfg: ScanConfig,
        order: Vec<u64>,
    ) -> (Self, std::rc::Rc<std::cell::RefCell<ScanResults>>) {
        let results = std::rc::Rc::new(std::cell::RefCell::new(ScanResults::default()));
        let slots = vec![ProbeSlot::default(); cfg.space.size() as usize];
        if obs::enabled() {
            obs::counter(obs::Counter::ScanSlots, slots.len() as u64);
        }
        (
            HostDiscovery {
                cfg,
                queue: order.into_iter(),
                slots,
                outstanding: 0,
                targets: Vec::new(),
                results: results.clone(),
                done: false,
            },
            results,
        )
    }

    /// True once every probe has been sent and answered.
    pub fn finished(&self) -> bool {
        self.done && self.outstanding == 0
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        // Collect the tick's targets first, then hand the whole burst
        // to the simulator in one call — by default one queue entry per
        // distinct answer deadline instead of one per probe. Deferring
        // the sends does not reorder anything observable: nothing in
        // this loop touches the sim RNG or schedules events, so the
        // probes' RNG draws and sequence numbers are consecutive
        // exactly as in the probe-per-iteration formulation.
        self.targets.clear();
        let probes = self.cfg.probes_per_target.max(1);
        let mut sent = 0;
        let mut blocked = 0u64;
        while sent < self.cfg.batch {
            let Some(ix) = self.queue.next() else {
                self.done = true;
                break;
            };
            let ip = self.cfg.space.addr_at(ix);
            if self.cfg.blocklist.is_blocked(ip) {
                blocked += 1;
                continue;
            }
            for k in 0..probes {
                self.targets.push(ip);
                obs::journal!(ip, obs::JournalEvent::ProbeSent { attempt: k + 1 });
            }
            // `ix` is the address's offset in the space — the slot index.
            self.slots[ix as usize] = ProbeSlot { remaining: probes, best: 0 };
            self.outstanding += 1;
            sent += 1;
        }
        if self.cfg.per_probe_events {
            for &ip in &self.targets {
                ctx.probe(ip, self.cfg.port);
            }
        } else {
            ctx.probe_batch(&self.targets, self.cfg.port);
        }
        let mut r = self.results.borrow_mut();
        r.blocked += blocked;
        r.probes_sent += self.targets.len() as u64;
    }
}

impl Endpoint for HostDiscovery {
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.pump(ctx);
        if !self.done {
            let tick = self.cfg.tick;
            ctx.set_timer(tick, 0);
        }
    }

    fn on_probe(&mut self, _ctx: &mut Ctx<'_>, target: Ipv4Addr, _port: u16, status: ProbeStatus) {
        let Some(ix) = self.cfg.space.index_of(target) else { return };
        obs::journal!(target, obs::JournalEvent::ProbeReply { status: status_label(rank(status)) });
        let slot = &mut self.slots[ix as usize];
        if slot.remaining == 0 {
            // Never probed, or verdict already recorded (an Open answer
            // resolves early; stragglers land here).
            return;
        }
        // Status preference: Open > Closed > Filtered.
        slot.best = slot.best.max(rank(status));
        slot.remaining -= 1;
        if slot.remaining == 0 || slot.best == rank(ProbeStatus::Open) {
            let best = slot.best;
            slot.remaining = 0;
            self.outstanding -= 1;
            obs::journal!(target, obs::JournalEvent::ProbeVerdict { verdict: status_label(best) });
            let mut r = self.results.borrow_mut();
            match best {
                2 => r.open.push(target),
                1 => r.closed += 1,
                _ => r.filtered += 1,
            }
            if obs::enabled() && self.done && self.outstanding == 0 {
                obs::event!(
                    "zscan.sweep_done",
                    open = r.open.len(),
                    closed = r.closed,
                    filtered = r.filtered,
                    probes_sent = r.probes_sent,
                    blocked = r.blocked,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{FirewallPolicy, SimDuration, Simulator};

    struct Sink;
    impl Endpoint for Sink {}

    /// Builds a /24 world: .1..=.20 run a bound service on 21, .21..=.40
    /// exist with the port closed, .41..=.50 drop everything.
    fn build_world(sim: &mut Simulator) {
        let svc = sim.register_endpoint(Box::new(Sink));
        for i in 1..=20u8 {
            sim.bind(Ipv4Addr::new(100, 0, 0, i), 21, svc);
        }
        for i in 21..=40u8 {
            sim.add_host(Ipv4Addr::new(100, 0, 0, i));
        }
        for i in 41..=50u8 {
            let ip = Ipv4Addr::new(100, 0, 0, i);
            sim.add_host(ip);
            sim.set_firewall(ip, FirewallPolicy::DropAll);
        }
    }

    #[test]
    fn scan_classifies_open_closed_filtered() {
        let mut sim = Simulator::new(42);
        build_world(&mut sim);
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let mut cfg = ScanConfig::tcp21(space, 9);
        cfg.blocklist = Blocklist::new();
        let (scanner, results) = HostDiscovery::new(cfg);
        let id = sim.register_endpoint(Box::new(scanner));
        sim.schedule_timer(id, SimDuration::ZERO, 0);
        sim.run();
        let r = results.borrow();
        assert_eq!(r.open.len(), 20);
        assert_eq!(r.closed, 20);
        // 206 absent hosts + 10 DropAll hosts = 216 filtered.
        assert_eq!(r.filtered, 216);
        assert_eq!(r.probes_sent, 256);
        assert!((r.hit_rate() - 20.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn open_list_is_permuted_not_sequential() {
        let mut sim = Simulator::new(42);
        let svc = sim.register_endpoint(Box::new(Sink));
        for i in 0..=255u8 {
            sim.bind(Ipv4Addr::new(100, 0, 0, i), 21, svc);
        }
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let mut cfg = ScanConfig::tcp21(space, 5);
        cfg.blocklist = Blocklist::new();
        cfg.batch = 256; // one burst so arrival order ≈ send order modulo latency
        let (scanner, results) = HostDiscovery::new(cfg);
        let id = sim.register_endpoint(Box::new(scanner));
        sim.schedule_timer(id, SimDuration::ZERO, 0);
        sim.run();
        let r = results.borrow();
        assert_eq!(r.open.len(), 256);
        let sorted = {
            let mut s = r.open.clone();
            s.sort();
            s
        };
        assert_ne!(r.open, sorted);
    }

    #[test]
    fn blocklist_suppresses_probes() {
        let mut sim = Simulator::new(42);
        build_world(&mut sim);
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let mut cfg = ScanConfig::tcp21(space, 9);
        let mut bl = Blocklist::new();
        bl.exclude("100.0.0.0/25".parse().unwrap()); // blocks .0-.127, i.e. all live hosts
        cfg.blocklist = bl;
        let (scanner, results) = HostDiscovery::new(cfg);
        let id = sim.register_endpoint(Box::new(scanner));
        sim.schedule_timer(id, SimDuration::ZERO, 0);
        sim.run();
        let r = results.borrow();
        assert_eq!(r.open.len(), 0);
        assert_eq!(r.blocked, 128);
        assert_eq!(r.probes_sent, 128);
    }

    #[test]
    fn sharded_scans_cover_space_exactly_once() {
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let mut total_open = 0;
        for shard in 0..3u64 {
            let mut sim = Simulator::new(42);
            build_world(&mut sim);
            let mut cfg = ScanConfig::tcp21(space, 9);
            cfg.blocklist = Blocklist::new();
            cfg.shard = (shard, 3);
            let (scanner, results) = HostDiscovery::new(cfg);
            let id = sim.register_endpoint(Box::new(scanner));
            sim.schedule_timer(id, SimDuration::ZERO, 0);
            sim.run();
            total_open += results.borrow().open.len();
        }
        assert_eq!(total_open, 20, "shards find each open host exactly once");
    }

    #[test]
    fn hash_shards_cover_space_exactly_once() {
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let shards = 4u64;
        let mut total_open = 0;
        let mut total_probes = 0;
        let mut seen: std::collections::HashSet<Ipv4Addr> = std::collections::HashSet::new();
        for index in 0..shards {
            let mut sim = Simulator::new(42);
            build_world(&mut sim);
            let mut cfg = ScanConfig::tcp21(space, 9);
            cfg.blocklist = Blocklist::new();
            cfg.hash_shard = Some(HashShard { seed: 42, index, shards });
            let (scanner, results) = HostDiscovery::new(cfg);
            let id = sim.register_endpoint(Box::new(scanner));
            sim.schedule_timer(id, SimDuration::ZERO, 0);
            sim.run();
            let r = results.borrow();
            total_open += r.open.len();
            total_probes += r.probes_sent;
            for &ip in &r.open {
                assert!(seen.insert(ip), "{ip} discovered by two shards");
            }
        }
        assert_eq!(total_open, 20, "hash shards find each open host exactly once");
        assert_eq!(total_probes, space.size(), "hash shards probe each address exactly once");
    }

    #[test]
    fn shard_batch_grid_covers_space_exactly_once() {
        // One scan per (shard, batch) cell: the union must equal one
        // unsharded sweep, with no address probed twice — the coverage
        // contract the streaming study runner builds on.
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let (shards, batches) = (2u64, 3u64);
        let mut total_open = 0;
        let mut total_probes = 0;
        let mut seen: std::collections::HashSet<Ipv4Addr> = std::collections::HashSet::new();
        for index in 0..shards {
            for b in 0..batches {
                let mut sim = Simulator::new(42);
                build_world(&mut sim);
                let mut cfg = ScanConfig::tcp21(space, 9);
                cfg.blocklist = Blocklist::new();
                cfg.hash_shard = Some(HashShard { seed: 42, index, shards });
                cfg.hash_batch = Some(HashBatch { seed: 42, index: b, batches });
                let (scanner, results) = HostDiscovery::new(cfg);
                let id = sim.register_endpoint(Box::new(scanner));
                sim.schedule_timer(id, SimDuration::ZERO, 0);
                sim.run();
                let r = results.borrow();
                total_open += r.open.len();
                total_probes += r.probes_sent;
                for &ip in &r.open {
                    assert!(seen.insert(ip), "{ip} discovered by two grid cells");
                }
            }
        }
        assert_eq!(total_open, 20, "grid cells find each open host exactly once");
        assert_eq!(total_probes, space.size(), "grid cells probe each address exactly once");
    }

    #[test]
    fn retries_recover_lossy_targets() {
        use netsim::SimConfig;
        // With 60% probe loss, one probe misses many hosts; five probes
        // per target recover nearly all of them.
        let run = |probes: u8| {
            let cfg_sim = SimConfig { probe_loss: 0.6, ..SimConfig::default() };
            let mut sim = Simulator::with_config(42, cfg_sim);
            build_world(&mut sim);
            let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
            let mut cfg = ScanConfig::tcp21(space, 9);
            cfg.blocklist = Blocklist::new();
            cfg.probes_per_target = probes;
            let (scanner, results) = HostDiscovery::new(cfg);
            let id = sim.register_endpoint(Box::new(scanner));
            sim.schedule_timer(id, SimDuration::ZERO, 0);
            sim.run();
            let n = results.borrow().open.len();
            n
        };
        let single = run(1);
        let retried = run(5);
        assert!(single < 20, "loss must bite: {single}");
        assert!(retried > single, "{retried} vs {single}");
        // With 5 probes at 60% loss each host is missed with p = 0.6^5
        // ≈ 7.8%, so ~18.4 of 20 recover in expectation. Assert ≥ 16
        // (mean - 2.5σ) to stay robust to the RNG stream.
        assert!(retried >= 16, "retries recover most hosts: {retried}");
    }

    #[test]
    fn pacing_spreads_probes_over_time() {
        let mut sim = Simulator::new(42);
        build_world(&mut sim);
        let space: Ipv4Net = "100.0.0.0/24".parse().unwrap();
        let mut cfg = ScanConfig::tcp21(space, 9);
        cfg.blocklist = Blocklist::new();
        cfg.batch = 16; // 256 probes / 16 per tick = 16 ticks
        cfg.tick = SimDuration::from_millis(100);
        let (scanner, results) = HostDiscovery::new(cfg);
        let id = sim.register_endpoint(Box::new(scanner));
        sim.schedule_timer(id, SimDuration::ZERO, 0);
        sim.run();
        assert_eq!(results.borrow().probes_sent, 256);
        // 16 ticks at 100ms = at least 1.5s of simulated pacing.
        assert!(sim.now().as_micros() >= 1_500_000, "{}", sim.now());
    }
}
