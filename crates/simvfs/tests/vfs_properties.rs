//! Property-based tests for the virtual filesystem.

use proptest::prelude::*;
use simvfs::{FileMeta, Vfs};

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_.-]{1,8}", 1..5)
        .prop_filter("dot segments canonicalize away", |segs| {
            segs.iter().all(|s| s != "." && s != "..")
        })
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// Files added are retrievable; counts track additions.
    #[test]
    fn add_then_lookup(paths in proptest::collection::hash_set(path_strategy(), 1..20)) {
        let mut vfs = Vfs::new();
        let mut added = Vec::new();
        for p in &paths {
            // A path may fail if a previously-added file occupies one of
            // its parent components; that's legal and must error cleanly.
            if vfs.add_file(p, FileMeta::public(1)).is_ok() {
                added.push(p.clone());
            }
        }
        for p in &added {
            // Unless a later add replaced an ancestor, the file exists.
            if let Ok(meta) = vfs.file(p) {
                prop_assert_eq!(meta.size, 1);
            }
        }
        prop_assert!(vfs.file_count() <= added.len());
        prop_assert!(vfs.file_count() >= 1);
    }

    /// store_unique never overwrites: after N stores of the same name,
    /// N distinct files exist.
    #[test]
    fn store_unique_preserves(n in 1usize..12) {
        let mut vfs = Vfs::new();
        let mut stored = std::collections::HashSet::new();
        for i in 0..n {
            let id = vfs
                .store_unique("/up/probe.txt", FileMeta::public(i as u64))
                .unwrap();
            let path = vfs.path_of(id);
            prop_assert!(stored.insert(path.clone()), "duplicate {path}");
        }
        prop_assert_eq!(vfs.file_count(), n);
        prop_assert!(vfs.exists("/up/probe.txt"));
    }

    /// walk() visits exactly file_count() files and dir_count() dirs,
    /// in sorted order, and every walked path resolves.
    #[test]
    fn walk_is_complete_and_sorted(paths in proptest::collection::hash_set(path_strategy(), 1..15)) {
        let mut vfs = Vfs::new();
        for p in &paths {
            let _ = vfs.add_file(p, FileMeta::public(2));
        }
        let mut walked: Vec<(String, bool)> = Vec::new();
        vfs.walk(|p, n| walked.push((p.to_owned(), n.is_dir())));
        let files = walked.iter().filter(|(_, is_dir)| !is_dir).count();
        let dirs = walked.iter().filter(|(_, is_dir)| *is_dir).count();
        prop_assert_eq!(files, vfs.file_count());
        prop_assert_eq!(dirs, vfs.dir_count());
        for (p, _) in &walked {
            prop_assert!(vfs.exists(p), "{p}");
        }
        // Note: DFS over BTreeMaps is *sibling*-sorted, not globally
        // string-sorted (a sibling can be a prefix of another plus a
        // character smaller than '/'), so we assert per-directory order.
        let mut by_parent: std::collections::HashMap<String, Vec<String>> =
            std::collections::HashMap::new();
        for (p, _) in &walked {
            let parent = match p.rfind('/') {
                Some(0) => "/".to_owned(),
                Some(ix) => p[..ix].to_owned(),
                None => "/".to_owned(),
            };
            by_parent.entry(parent).or_default().push(p.clone());
        }
        for siblings in by_parent.values() {
            let mut sorted = siblings.clone();
            sorted.sort();
            prop_assert_eq!(siblings, &sorted, "siblings listed in name order");
        }
    }

    /// rename moves the whole subtree and removes the source.
    #[test]
    fn rename_moves_subtree(leaf in "[a-z]{1,6}") {
        let mut vfs = Vfs::new();
        vfs.add_file(&format!("/src/a/{leaf}"), FileMeta::public(1)).unwrap();
        vfs.add_file("/src/b", FileMeta::public(1)).unwrap();
        let before = vfs.file_count();
        vfs.rename("/src", "/dst").unwrap();
        prop_assert_eq!(vfs.file_count(), before);
        let moved = format!("/dst/a/{leaf}");
        prop_assert!(vfs.exists(&moved));
        prop_assert!(vfs.exists("/dst/b"));
        prop_assert!(!vfs.exists("/src"));
    }

    /// remove() deletes exactly the target subtree.
    #[test]
    fn remove_subtree(n in 1usize..8) {
        let mut vfs = Vfs::new();
        for i in 0..n {
            vfs.add_file(&format!("/doomed/f{i}"), FileMeta::public(1)).unwrap();
        }
        vfs.add_file("/kept/file", FileMeta::public(1)).unwrap();
        vfs.remove("/doomed").unwrap();
        prop_assert_eq!(vfs.file_count(), 1);
        prop_assert!(vfs.exists("/kept/file"));
    }
}
