//! A reusable absolute-path builder for callers that materialize many
//! sibling paths (worldgen emits hundreds of thousands): segments are
//! pushed and popped against one growing buffer instead of a `format!`
//! per file.

use std::fmt;

/// Push/pop segment stack over a single `String`. Typical use: `set`
/// the directory once, then `push`/`pop` a file name per emission —
/// after warm-up no call allocates.
///
/// ```
/// use simvfs::PathScratch;
///
/// let mut p = PathScratch::new();
/// p.set("/pub/photos");
/// p.push_fmt(format_args!("DSC_{:04}.JPG", 17));
/// assert_eq!(p.as_str(), "/pub/photos/DSC_0017.JPG");
/// p.pop();
/// assert_eq!(p.as_str(), "/pub/photos");
/// ```
#[derive(Debug, Default, Clone)]
pub struct PathScratch {
    buf: String,
    /// Buffer length before each pushed segment, for `pop`.
    marks: Vec<usize>,
}

impl PathScratch {
    /// An empty builder (path `/`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the builder to `base` (an absolute path, or `""`/`"/"`
    /// for the root). Clears the segment stack.
    pub fn set(&mut self, base: &str) {
        self.buf.clear();
        self.marks.clear();
        if base != "/" {
            self.buf.push_str(base);
        }
    }

    /// Appends one path segment (`/{seg}`).
    pub fn push(&mut self, seg: &str) {
        self.marks.push(self.buf.len());
        self.buf.push('/');
        self.buf.push_str(seg);
    }

    /// Appends one formatted path segment without an intermediate
    /// `String` (`format_args!` renders straight into the buffer).
    pub fn push_fmt(&mut self, seg: fmt::Arguments<'_>) {
        use fmt::Write as _;
        self.marks.push(self.buf.len());
        self.buf.push('/');
        let _ = self.buf.write_fmt(seg);
    }

    /// Removes the most recently pushed segment.
    pub fn pop(&mut self) {
        if let Some(mark) = self.marks.pop() {
            self.buf.truncate(mark);
        }
    }

    /// The built path (always absolute; `/` when empty).
    pub fn as_str(&self) -> &str {
        if self.buf.is_empty() {
            "/"
        } else {
            &self.buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let mut p = PathScratch::new();
        p.set("/a/b");
        p.push("c");
        assert_eq!(p.as_str(), "/a/b/c");
        p.push_fmt(format_args!("f{:02}", 3));
        assert_eq!(p.as_str(), "/a/b/c/f03");
        p.pop();
        p.pop();
        assert_eq!(p.as_str(), "/a/b");
        p.set("/");
        assert_eq!(p.as_str(), "/");
        p.push("x");
        assert_eq!(p.as_str(), "/x");
    }
}
