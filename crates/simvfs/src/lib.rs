//! A virtual filesystem with UNIX permissions for simulated FTP servers.
//!
//! Every simulated server in the reproduction publishes a [`Vfs`]: a tree
//! of directories and files with permission bits, owners, sizes and
//! modification times. File *contents* are deliberately not stored —
//! matching the paper's ethics stance of not bulk-downloading files — but
//! each file can carry a small optional `content` used where the paper
//! did download or upload specific artifacts (write probes, the
//! `ftpchk3` stages, `robots.txt`).
//!
//! The metadata here is exactly what directory listings expose: the
//! enumerator reconstructs its view of a server from rendered listings,
//! never from this structure directly, so the measurement pipeline is
//! honest about what a real client could observe.
//!
//! # Arena representation
//!
//! Internally the tree is *not* a pointer structure: nodes live in a
//! single slab (`Vec<NodeSlot>`) indexed by `u32`, names and mtimes are
//! interned into a shared string arena (photo mtimes repeat across
//! thousands of files), and each directory holds a `Vec<u32>` of child
//! slot indices kept **sorted by name bytes**. That sort order is what
//! the previous `BTreeMap<String, Node>` representation iterated in, so
//! [`Vfs::list`] and [`Vfs::walk`] produce byte-identical orderings —
//! the rendered `LIST` bodies the whole study pipeline hashes against
//! do not change. What changes is the cost: inserting a file allocates
//! only when an arena grows (amortized ~0 per file) instead of one
//! owned `String` key plus tree nodes per path segment.
//!
//! Lookups return borrowed views ([`NodeRef`], [`FileRef`], [`DirRef`])
//! rather than `&Node`: plain `Copy` structs whose string fields borrow
//! from the arena, mirroring the enumerator's columnar `FileTable`.
//!
//! # Example
//!
//! ```
//! use simvfs::{Vfs, FileMeta, Owner};
//!
//! let mut vfs = Vfs::new();
//! vfs.mkdir_p("/pub/photos")?;
//! vfs.add_file("/pub/photos/DSC_0001.JPG", FileMeta::public(2_400_000))?;
//! assert_eq!(vfs.list("/pub/photos")?.len(), 1);
//! assert_eq!(vfs.file_count(), 1);
//! # Ok::<(), simvfs::VfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

use ftp_proto::listing::Permissions;
use ftp_proto::FtpPath;
use std::fmt;

mod scratch;
pub use scratch::PathScratch;

/// Who owns a node — rendered as the owner column of UNIX listings and
/// used by upload-approval quirks (Pure-FTPd refuses to serve files still
/// owned by [`Owner::Anonymous`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Owner {
    /// `root`.
    Root,
    /// The FTP service account, `ftp`.
    #[default]
    Ftp,
    /// An anonymous upload not yet approved by the administrator.
    Anonymous,
    /// A local user account (uid rendered as `user<N>`).
    User(u16),
}

impl serde::Serialize for Owner {}
impl serde::Deserialize for Owner {}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Root => f.write_str("root"),
            Owner::Ftp => f.write_str("ftp"),
            Owner::Anonymous => f.write_str("ftp"),
            Owner::User(n) => write!(f, "user{n}"),
        }
    }
}

/// Metadata for a file node — the owned *builder* form used to insert
/// files. For the zero-allocation insert path see [`FileAttrs`]; for
/// reading back what the tree stores see [`FileRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings (`"Jun 18  2015"`).
    pub mtime: String,
    /// Optional small content (write probes, scripts, robots.txt).
    pub content: Option<String>,
}

impl serde::Serialize for FileMeta {}
impl serde::Deserialize for FileMeta {}

impl FileMeta {
    /// A world-readable (`0644`) file of the given size.
    pub fn public(size: u64) -> Self {
        FileMeta {
            size,
            perms: Permissions::public_file(),
            owner: Owner::Ftp,
            mtime: DEFAULT_MTIME.to_owned(),
            content: None,
        }
    }

    /// An owner-only (`0600`) file of the given size.
    pub fn private(size: u64) -> Self {
        FileMeta { perms: Permissions::private_file(), ..FileMeta::public(size) }
    }

    /// Builder-style: replaces the content (and size, to match).
    pub fn with_content(mut self, content: impl Into<String>) -> Self {
        let content = content.into();
        self.size = content.len() as u64;
        self.content = Some(content);
        self
    }

    /// Builder-style: replaces the owner.
    pub fn with_owner(mut self, owner: Owner) -> Self {
        self.owner = owner;
        self
    }

    /// Builder-style: replaces the permissions.
    pub fn with_perms(mut self, perms: Permissions) -> Self {
        self.perms = perms;
        self
    }

    /// Builder-style: replaces the mtime text.
    pub fn with_mtime(mut self, mtime: impl Into<String>) -> Self {
        self.mtime = mtime.into();
        self
    }

    fn as_attrs(&self) -> FileAttrs<'_> {
        FileAttrs {
            size: self.size,
            perms: self.perms,
            owner: self.owner,
            mtime: &self.mtime,
            content: self.content.as_deref(),
        }
    }
}

/// Borrowed file attributes for the hot insert path
/// ([`Vfs::add_file_attrs`]): worldgen renders the mtime into a reused
/// scratch buffer and passes it here by reference, so materializing a
/// file costs no owned `String`s at all — the arena interns what it
/// needs.
#[derive(Debug, Clone, Copy)]
pub struct FileAttrs<'a> {
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings.
    pub mtime: &'a str,
    /// Optional small content.
    pub content: Option<&'a str>,
}

impl<'a> FileAttrs<'a> {
    /// A world-readable (`0644`) file with the given size and mtime.
    pub fn public(size: u64, mtime: &'a str) -> Self {
        FileAttrs {
            size,
            perms: Permissions::public_file(),
            owner: Owner::Ftp,
            mtime,
            content: None,
        }
    }
}

/// Metadata for a directory node (owned builder form; directories
/// created implicitly use [`DirMeta::default`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirMeta {
    /// Permission bits (other-read governs anonymous LIST).
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings.
    pub mtime: String,
}

impl serde::Serialize for DirMeta {}
impl serde::Deserialize for DirMeta {}

/// The mtime every implicitly-created node carries.
const DEFAULT_MTIME: &str = "Jun 18  2015";

impl Default for DirMeta {
    fn default() -> Self {
        DirMeta {
            perms: Permissions::public_dir(),
            owner: Owner::Ftp,
            mtime: DEFAULT_MTIME.to_owned(),
        }
    }
}

/// Errors from [`Vfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VfsError {
    /// The path (or one of its parents) does not exist.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// A file exists where a directory is required (or vice versa).
    NotADirectory {
        /// The conflicting path.
        path: String,
    },
    /// Target name already exists.
    AlreadyExists {
        /// The conflicting path.
        path: String,
    },
    /// The path string itself is malformed.
    BadPath {
        /// The malformed input.
        path: String,
    },
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            VfsError::NotADirectory { path } => write!(f, "not a directory: {path}"),
            VfsError::AlreadyExists { path } => write!(f, "already exists: {path}"),
            VfsError::BadPath { path } => write!(f, "malformed path: {path}"),
        }
    }
}

impl std::error::Error for VfsError {}

// ---------------------------------------------------------------------
// Interner: the shared name/mtime arena.
// ---------------------------------------------------------------------

/// Id of an interned string (index into [`Interner::spans`]).
type StrId = u32;

/// Append-only string arena with open-addressing dedup. All node names
/// and mtimes live here; repeated strings (mtimes, `index.html`, …)
/// cost nothing after their first appearance, and unique strings cost
/// only amortized arena growth — never a per-string allocation.
#[derive(Debug, Clone, Default)]
struct Interner {
    /// Every interned string, concatenated.
    buf: String,
    /// `id -> (offset, len)` into `buf`.
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of `StrId`s (power-of-two capacity,
    /// `EMPTY` marks free slots). Rebuilt on growth; never tombstoned —
    /// the arena is append-only.
    table: Vec<u32>,
}

const EMPTY: u32 = u32::MAX;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Interner {
    fn get(&self, id: StrId) -> &str {
        let (off, len) = self.spans[id as usize];
        &self.buf[off as usize..(off + len) as usize]
    }

    /// Total bytes held by the arena (unique strings only).
    fn bytes(&self) -> usize {
        self.buf.len()
    }

    fn intern(&mut self, s: &str) -> StrId {
        if self.table.is_empty() {
            self.table = vec![EMPTY; 16];
        }
        let mask = self.table.len() - 1;
        let mut ix = (fnv1a(s) as usize) & mask;
        loop {
            match self.table[ix] {
                EMPTY => break,
                id if self.get(id) == s => return id,
                _ => ix = (ix + 1) & mask,
            }
        }
        let id = self.spans.len() as u32;
        let off = self.buf.len() as u32;
        self.buf.push_str(s);
        self.spans.push((off, s.len() as u32));
        if obs::enabled() {
            obs::counter(obs::Counter::VfsInternedBytes, s.len() as u64);
        }
        self.table[ix] = id;
        // Keep load factor under 1/2.
        if self.spans.len() * 2 > self.table.len() {
            self.grow();
        }
        id
    }

    fn grow(&mut self) {
        let new_cap = self.table.len() * 2;
        let mut table = vec![EMPTY; new_cap];
        let mask = new_cap - 1;
        for id in 0..self.spans.len() as u32 {
            let mut ix = (fnv1a(self.get(id)) as usize) & mask;
            while table[ix] != EMPTY {
                ix = (ix + 1) & mask;
            }
            table[ix] = id;
        }
        self.table = table;
    }
}

// ---------------------------------------------------------------------
// Node slab.
// ---------------------------------------------------------------------

/// Index of a node slot in the arena. Returned by write operations that
/// used to return owned paths ([`Vfs::store_unique`]); resolve it back
/// to text with [`Vfs::path_of`]. Stable until the node is removed or
/// renamed away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

/// Handle to a directory node from [`Vfs::dir_handle`], for bulk
/// insertion with [`Vfs::add_file_in`]. Valid for the `Vfs`'s lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirId(u32);

const ROOT: u32 = 0;
/// Sentinel for "no content" in a file slot.
const NO_CONTENT: u32 = u32::MAX;

#[derive(Debug, Clone, PartialEq)]
struct FileData {
    size: u64,
    perms: Permissions,
    owner: Owner,
    mtime: StrId,
    /// Index into `Vfs::contents`, or `NO_CONTENT`.
    content: u32,
}

#[derive(Debug, Clone, PartialEq)]
struct DirData {
    perms: Permissions,
    owner: Owner,
    mtime: StrId,
    /// Child slot indices, sorted by name bytes — the same order the
    /// old `BTreeMap<String, _>` iterated in, so listings are
    /// byte-identical.
    children: Vec<u32>,
}

#[derive(Debug, Clone, PartialEq)]
enum Slot {
    File(FileData),
    Dir(DirData),
}

#[derive(Debug, Clone, PartialEq)]
struct NodeSlot {
    /// Interned name (the root's is the empty string).
    name: StrId,
    kind: Slot,
}

// ---------------------------------------------------------------------
// Borrowed views.
// ---------------------------------------------------------------------

/// Borrowed view of a file node. Plain `Copy` fields; the string fields
/// borrow from the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileRef<'v> {
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings.
    pub mtime: &'v str,
    /// Optional small content.
    pub content: Option<&'v str>,
}

/// Borrowed view of a directory node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirRef<'v> {
    /// Permission bits (other-read governs anonymous LIST).
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings.
    pub mtime: &'v str,
    /// Number of children.
    pub len: usize,
}

/// Borrowed view of any node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeRef<'v> {
    /// A regular file.
    File(FileRef<'v>),
    /// A directory.
    Dir(DirRef<'v>),
}

impl NodeRef<'_> {
    /// True for directory nodes.
    pub fn is_dir(&self) -> bool {
        matches!(self, NodeRef::Dir(_))
    }
}

/// Mutable access to a file's listing-visible attributes (from
/// [`Vfs::file_mut`]). Mtime and content are append-only arena data and
/// stay immutable; nothing in the pipeline rewrites them in place.
#[derive(Debug)]
pub struct FileMut<'v> {
    /// Size in bytes.
    pub size: &'v mut u64,
    /// Permission bits.
    pub perms: &'v mut Permissions,
    /// Owner account.
    pub owner: &'v mut Owner,
}

/// Name-ordered iterator over a directory's children (from
/// [`Vfs::list`]). Items borrow from the tree, not the iterator, so it
/// composes with `collect`/`filter` like any slice iterator.
#[derive(Debug, Clone)]
pub struct DirList<'v> {
    vfs: &'v Vfs,
    children: std::slice::Iter<'v, u32>,
}

impl<'v> Iterator for DirList<'v> {
    type Item = (&'v str, NodeRef<'v>);

    fn next(&mut self) -> Option<Self::Item> {
        let &child = self.children.next()?;
        let slot = &self.vfs.nodes[child as usize];
        Some((self.vfs.strings.get(slot.name), self.vfs.node_ref(child)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.children.size_hint()
    }
}

impl ExactSizeIterator for DirList<'_> {}

/// The virtual filesystem: a tree rooted at `/`, stored as an indexed
/// arena (see the module docs for the layout).
#[derive(Debug, Clone)]
pub struct Vfs {
    /// Node slab; slot 0 is the root directory. Slots detached by
    /// `remove` simply become unreachable — removal is rare (FTP `DELE`
    /// on simulated hosts) and the slab lives only as long as its host.
    nodes: Vec<NodeSlot>,
    /// Interned names and mtimes.
    strings: Interner,
    /// File contents (write probes, scripts, robots.txt) — rare, so
    /// they live out-of-line from the slots.
    contents: Vec<Box<str>>,
    /// Bumped on every successful mutation. Callers caching data derived
    /// from the tree (e.g. rendered `LIST` bodies) compare generations
    /// to invalidate in O(1) instead of re-walking.
    generation: u64,
}

// The serde stubs are marker traits (nothing in the workspace
// serializes); a real serializer would need a path-walk representation
// for the arena anyway, so these stay manual rather than derived.
impl serde::Serialize for Vfs {}
impl serde::Deserialize for Vfs {}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

/// Equality compares tree *content* only: two filesystems with the same
/// nodes are equal regardless of how many mutations produced them or
/// how their arenas are laid out.
impl PartialEq for Vfs {
    fn eq(&self, other: &Self) -> bool {
        fn dir_eq(a: &Vfs, an: u32, b: &Vfs, bn: u32) -> bool {
            let (Slot::Dir(da), Slot::Dir(db)) =
                (&a.nodes[an as usize].kind, &b.nodes[bn as usize].kind)
            else {
                return false;
            };
            if da.children.len() != db.children.len()
                || da.perms != db.perms
                || da.owner != db.owner
                || a.strings.get(da.mtime) != b.strings.get(db.mtime)
            {
                return false;
            }
            da.children.iter().zip(&db.children).all(|(&ca, &cb)| {
                let (sa, sb) = (&a.nodes[ca as usize], &b.nodes[cb as usize]);
                if a.strings.get(sa.name) != b.strings.get(sb.name) {
                    return false;
                }
                match (&sa.kind, &sb.kind) {
                    (Slot::File(fa), Slot::File(fb)) => {
                        fa.size == fb.size
                            && fa.perms == fb.perms
                            && fa.owner == fb.owner
                            && a.strings.get(fa.mtime) == b.strings.get(fb.mtime)
                            && a.content_of(fa) == b.content_of(fb)
                    }
                    (Slot::Dir(_), Slot::Dir(_)) => dir_eq(a, ca, b, cb),
                    _ => false,
                }
            })
        }
        dir_eq(self, ROOT, other, ROOT)
    }
}
impl Eq for Vfs {}

impl Vfs {
    /// An empty filesystem containing only `/`.
    pub fn new() -> Self {
        let mut strings = Interner::default();
        let root_name = strings.intern("");
        let default_mtime = strings.intern(DEFAULT_MTIME);
        let root = NodeSlot {
            name: root_name,
            kind: Slot::Dir(DirData {
                perms: Permissions::public_dir(),
                owner: Owner::Ftp,
                mtime: default_mtime,
                children: Vec::new(),
            }),
        };
        Vfs { nodes: vec![root], strings, contents: Vec::new(), generation: 0 }
    }

    /// Mutation counter; changes whenever the tree may have changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Node slots ever created (the root included; detached slots too —
    /// this measures arena footprint, not live-tree size).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Bytes held by the name/mtime intern arena.
    pub fn interned_bytes(&self) -> usize {
        self.strings.bytes()
    }

    fn canon(path: &str) -> Result<FtpPath, VfsError> {
        path.parse().map_err(|_| VfsError::BadPath { path: path.to_owned() })
    }

    /// True if `path` is already in the canonical form [`canon`] would
    /// produce, so lookups can walk its segments without allocating a
    /// parsed path first. Control bytes disqualify (they must surface as
    /// [`VfsError::BadPath`] through the slow path).
    fn is_canonical(path: &str) -> bool {
        path == "/"
            || (path.len() > 1
                && path.starts_with('/')
                && !path.ends_with('/')
                && path[1..].split('/').all(|seg| {
                    !seg.is_empty()
                        && seg != "."
                        && seg != ".."
                        && !seg.bytes().any(|b| matches!(b, 0 | b'\r' | b'\n'))
                }))
    }

    fn content_of<'v>(&'v self, f: &FileData) -> Option<&'v str> {
        (f.content != NO_CONTENT).then(|| &*self.contents[f.content as usize])
    }

    fn node_ref(&self, ix: u32) -> NodeRef<'_> {
        match &self.nodes[ix as usize].kind {
            Slot::File(f) => NodeRef::File(FileRef {
                size: f.size,
                perms: f.perms,
                owner: f.owner,
                mtime: self.strings.get(f.mtime),
                content: self.content_of(f),
            }),
            Slot::Dir(d) => NodeRef::Dir(DirRef {
                perms: d.perms,
                owner: d.owner,
                mtime: self.strings.get(d.mtime),
                len: d.children.len(),
            }),
        }
    }

    /// Binary search for `name` among `dir`'s children. `Ok(child slot)`
    /// when present, `Err(insertion position)` when not.
    fn find_child(&self, dir: u32, name: &str) -> Result<u32, usize> {
        let Slot::Dir(d) = &self.nodes[dir as usize].kind else {
            unreachable!("find_child on a file slot");
        };
        d.children
            .binary_search_by(|&c| self.strings.get(self.nodes[c as usize].name).cmp(name))
            .map(|pos| d.children[pos])
    }

    /// Walks canonical `path` segments from the root; `Ok(slot)` or the
    /// error the legacy tree produced for the same shape.
    fn resolve_canonical(&self, path: &str) -> Result<u32, VfsError> {
        let mut cur = ROOT;
        for comp in path.split('/').filter(|s| !s.is_empty()) {
            if !matches!(self.nodes[cur as usize].kind, Slot::Dir(_)) {
                return Err(VfsError::NotADirectory { path: path.to_owned() });
            }
            cur = self
                .find_child(cur, comp)
                .map_err(|_| VfsError::NotFound { path: path.to_owned() })?;
        }
        Ok(cur)
    }

    fn resolve(&self, path: &str) -> Result<u32, VfsError> {
        if Self::is_canonical(path) {
            return self.resolve_canonical(path);
        }
        let p = Self::canon(path)?;
        self.resolve_canonical(p.as_str())
    }

    /// Allocates a node slot and links it into `dir`'s children at
    /// `pos` (from a failed [`Self::find_child`] search for `name`).
    fn insert_child(&mut self, dir: u32, pos: usize, name: &str, kind: Slot) -> u32 {
        let name = self.strings.intern(name);
        let id = self.nodes.len() as u32;
        self.nodes.push(NodeSlot { name, kind });
        if obs::enabled() {
            obs::counter(obs::Counter::VfsNodes, 1);
        }
        match &mut self.nodes[dir as usize].kind {
            Slot::Dir(d) => d.children.insert(pos, id),
            Slot::File(_) => unreachable!("insert_child on a file slot"),
        }
        id
    }

    fn new_dir_slot(&mut self) -> Slot {
        Slot::Dir(DirData {
            perms: Permissions::public_dir(),
            owner: Owner::Ftp,
            mtime: self.strings.intern(DEFAULT_MTIME),
            children: Vec::new(),
        })
    }

    fn file_data(&mut self, attrs: FileAttrs<'_>) -> FileData {
        let content = match attrs.content {
            Some(c) => {
                self.contents.push(c.into());
                (self.contents.len() - 1) as u32
            }
            None => NO_CONTENT,
        };
        FileData {
            size: attrs.size,
            perms: attrs.perms,
            owner: attrs.owner,
            mtime: self.strings.intern(attrs.mtime),
            content,
        }
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if any component is missing,
    /// [`VfsError::NotADirectory`] if a file appears mid-path.
    pub fn node(&self, path: &str) -> Result<NodeRef<'_>, VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        self.resolve(path).map(|ix| self.node_ref(ix))
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.node(path).is_ok()
    }

    /// True if `path` exists and is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(self.node(path), Ok(NodeRef::Dir(_)))
    }

    /// Creates a directory and all missing parents (like `mkdir -p`).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if a file blocks the path.
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        if Self::is_canonical(path) {
            return self.mkdir_p_canonical(path);
        }
        let p = Self::canon(path)?;
        self.mkdir_p_canonical(p.as_str())
    }

    fn mkdir_p_canonical(&mut self, path: &str) -> Result<(), VfsError> {
        self.descend_creating(path)?;
        self.generation += 1;
        Ok(())
    }

    /// Walks canonical `path`, creating missing directories, and returns
    /// the final slot (a directory).
    fn descend_creating(&mut self, path: &str) -> Result<u32, VfsError> {
        let mut cur = ROOT;
        for comp in path.split('/').filter(|s| !s.is_empty()) {
            if !matches!(self.nodes[cur as usize].kind, Slot::Dir(_)) {
                return Err(VfsError::NotADirectory { path: path.to_owned() });
            }
            cur = match self.find_child(cur, comp) {
                Ok(child) => {
                    if matches!(self.nodes[child as usize].kind, Slot::File(_)) {
                        return Err(VfsError::NotADirectory { path: path.to_owned() });
                    }
                    child
                }
                Err(pos) => {
                    let slot = self.new_dir_slot();
                    self.insert_child(cur, pos, comp, slot)
                }
            };
        }
        Ok(cur)
    }

    /// Creates a directory whose parent must already exist (FTP `MKD`).
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if the name is taken;
    /// [`VfsError::NotFound`]/[`VfsError::NotADirectory`] for bad parents.
    pub fn mkdir(&mut self, path: &str) -> Result<(), VfsError> {
        let p = Self::canon(path)?;
        let Some(name) = p.file_name() else {
            return Err(VfsError::BadPath { path: path.to_owned() });
        };
        let parent = self.resolve(p.parent().as_str())?;
        if !matches!(self.nodes[parent as usize].kind, Slot::Dir(_)) {
            return Err(VfsError::NotADirectory { path: path.to_owned() });
        }
        match self.find_child(parent, name) {
            Ok(_) => Err(VfsError::AlreadyExists { path: path.to_owned() }),
            Err(pos) => {
                let name = name.to_owned();
                let slot = self.new_dir_slot();
                self.insert_child(parent, pos, &name, slot);
                self.generation += 1;
                Ok(())
            }
        }
    }

    /// Adds a file, creating parent directories as needed. Overwrites an
    /// existing file at the same path.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if the target is an existing directory
    /// or a file blocks a parent component.
    pub fn add_file(&mut self, path: &str, meta: FileMeta) -> Result<(), VfsError> {
        self.add_file_attrs(path, meta.as_attrs())
    }

    /// [`Vfs::add_file`] with fully borrowed attributes — the worldgen
    /// hot path. One descent creates missing parents and places the
    /// file; nothing is allocated beyond amortized arena growth.
    ///
    /// # Errors
    ///
    /// As [`Vfs::add_file`].
    pub fn add_file_attrs(&mut self, path: &str, attrs: FileAttrs<'_>) -> Result<(), VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        if Self::is_canonical(path) {
            return self.add_file_canonical(path, attrs).map(|_| ());
        }
        let p = Self::canon(path)?;
        if p.file_name().is_none() {
            return Err(VfsError::BadPath { path: path.to_owned() });
        }
        self.add_file_canonical(p.as_str(), attrs).map(|_| ())
    }

    /// Descends to `path` once (creating missing directories, like
    /// [`Vfs::mkdir_p`]) and returns a handle for direct insertion via
    /// [`Vfs::add_file_in`]. The worldgen bulk path: generators place
    /// dozens to thousands of files per directory, and the handle
    /// replaces a full root-to-leaf descent per file with one descent
    /// per directory.
    ///
    /// The handle stays valid for the `Vfs`'s lifetime (nodes are never
    /// removed), but points at whatever the directory becomes.
    ///
    /// # Errors
    ///
    /// As [`Vfs::mkdir_p`]: a file blocking a component or a malformed
    /// path.
    pub fn dir_handle(&mut self, path: &str) -> Result<DirId, VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        if Self::is_canonical(path) {
            return self.descend_creating(path).map(DirId);
        }
        let p = Self::canon(path)?;
        self.descend_creating(p.as_str()).map(DirId)
    }

    /// Adds (or overwrites) the file `name` directly inside the
    /// directory `dir` — [`Vfs::add_file_attrs`] without the per-file
    /// path render and descent. `name` is a single component: no `/`.
    ///
    /// # Errors
    ///
    /// [`VfsError::BadPath`] for an empty/`.`/`..`/separator-bearing
    /// name, [`VfsError::NotADirectory`] when a directory named `name`
    /// already exists.
    pub fn add_file_in(
        &mut self,
        dir: DirId,
        name: &str,
        attrs: FileAttrs<'_>,
    ) -> Result<(), VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        if name.is_empty()
            || name == "."
            || name == ".."
            || name.bytes().any(|b| matches!(b, 0 | b'\r' | b'\n' | b'/'))
        {
            return Err(VfsError::BadPath { path: name.to_owned() });
        }
        let data = self.file_data(attrs);
        match self.find_child(dir.0, name) {
            Ok(child) => {
                if matches!(self.nodes[child as usize].kind, Slot::Dir(_)) {
                    return Err(VfsError::NotADirectory { path: name.to_owned() });
                }
                self.nodes[child as usize].kind = Slot::File(data);
            }
            Err(pos) => {
                self.insert_child(dir.0, pos, name, Slot::File(data));
            }
        }
        self.generation += 1;
        Ok(())
    }

    fn add_file_canonical(&mut self, path: &str, attrs: FileAttrs<'_>) -> Result<u32, VfsError> {
        if path == "/" {
            return Err(VfsError::BadPath { path: path.to_owned() });
        }
        let (parent_path, name) = match path.rfind('/') {
            Some(0) => ("/", &path[1..]),
            Some(ix) => (&path[..ix], &path[ix + 1..]),
            None => return Err(VfsError::BadPath { path: path.to_owned() }),
        };
        let parent = self.descend_creating(parent_path).map_err(|e| match e {
            // The legacy single-descent insert reported blocked parents
            // against the full target path; keep that.
            VfsError::NotADirectory { .. } => VfsError::NotADirectory { path: path.to_owned() },
            other => other,
        })?;
        let data = self.file_data(attrs);
        let id = match self.find_child(parent, name) {
            Ok(child) => {
                if matches!(self.nodes[child as usize].kind, Slot::Dir(_)) {
                    return Err(VfsError::NotADirectory { path: path.to_owned() });
                }
                self.nodes[child as usize].kind = Slot::File(data);
                child
            }
            Err(pos) => self.insert_child(parent, pos, name, Slot::File(data)),
        };
        self.generation += 1;
        Ok(id)
    }

    /// Stores an upload with the *unique-suffix* quirk: if `name` exists,
    /// the stored file becomes `name.1`, then `name.2`, … (the behavior
    /// §VI-A uses as a world-writable indicator). Returns the stored
    /// node's id; render it with [`Vfs::path_of`] when the text is
    /// needed — the candidate probing itself no longer builds paths.
    ///
    /// # Errors
    ///
    /// Propagates [`Vfs::add_file`] errors.
    pub fn store_unique(&mut self, path: &str, meta: FileMeta) -> Result<NodeId, VfsError> {
        self.store_unique_attrs(path, meta.as_attrs())
    }

    /// [`Vfs::store_unique`] with fully borrowed attributes; `Copy`
    /// attrs also make repeat stores of the same upload free.
    ///
    /// # Errors
    ///
    /// As [`Vfs::store_unique`].
    pub fn store_unique_attrs(
        &mut self,
        path: &str,
        attrs: FileAttrs<'_>,
    ) -> Result<NodeId, VfsError> {
        use fmt::Write as _;
        let canonical;
        let path = if Self::is_canonical(path) {
            path
        } else {
            canonical = Self::canon(path)?;
            if canonical.file_name().is_none() {
                return Err(VfsError::BadPath { path: path.to_owned() });
            }
            canonical.as_str()
        };
        if path == "/" {
            return Err(VfsError::BadPath { path: path.to_owned() });
        }
        let (parent_path, name) = match path.rfind('/') {
            Some(0) => ("/", &path[1..]),
            Some(ix) => (&path[..ix], &path[ix + 1..]),
            None => return Err(VfsError::BadPath { path: path.to_owned() }),
        };
        let parent = self.descend_creating(parent_path).map_err(|e| match e {
            VfsError::NotADirectory { .. } => VfsError::NotADirectory { path: path.to_owned() },
            other => other,
        })?;
        if let Err(pos) = self.find_child(parent, name) {
            let data = self.file_data(attrs);
            let id = self.insert_child(parent, pos, name, Slot::File(data));
            self.generation += 1;
            return Ok(NodeId(id));
        }
        // Candidate names are probed inside the already-resolved parent:
        // one suffix scratch reused across candidates, no re-descent.
        let mut candidate = String::with_capacity(name.len() + 4);
        for n in 1u32.. {
            candidate.clear();
            let _ = write!(candidate, "{name}.{n}");
            if let Err(pos) = self.find_child(parent, &candidate) {
                let data = self.file_data(attrs);
                let id = self.insert_child(parent, pos, &candidate, Slot::File(data));
                self.generation += 1;
                return Ok(NodeId(id));
            }
        }
        unreachable!("u32 suffix space exhausted")
    }

    /// Renders the absolute path of a node returned by
    /// [`Vfs::store_unique`]. Walks parent links by searching from the
    /// root — this is a test/diagnostic affordance, not a hot path.
    pub fn path_of(&self, id: NodeId) -> String {
        fn rec(vfs: &Vfs, cur: u32, target: u32, out: &mut String) -> bool {
            if cur == target {
                return true;
            }
            if let Slot::Dir(d) = &vfs.nodes[cur as usize].kind {
                for &c in &d.children {
                    out.push('/');
                    out.push_str(vfs.strings.get(vfs.nodes[c as usize].name));
                    if rec(vfs, c, target, out) {
                        return true;
                    }
                    out.truncate(out.rfind('/').unwrap_or(0));
                }
            }
            false
        }
        let mut out = String::new();
        if !rec(self, ROOT, id.0, &mut out) {
            out.clear();
        }
        if out.is_empty() {
            out.push('/');
        }
        out
    }

    /// Removes a file or (recursively) a directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if absent; [`VfsError::BadPath`] for `/`.
    pub fn remove(&mut self, path: &str) -> Result<(), VfsError> {
        let p = Self::canon(path)?;
        let Some(name) = p.file_name() else {
            return Err(VfsError::BadPath { path: path.to_owned() });
        };
        let parent = self.resolve(p.parent().as_str())?;
        if !matches!(self.nodes[parent as usize].kind, Slot::Dir(_)) {
            return Err(VfsError::NotADirectory { path: path.to_owned() });
        }
        match self.detach_child(parent, name) {
            // The subtree's slots become unreachable garbage in the
            // slab; nothing frees them (removal is rare and the slab
            // dies with its host). The gauge makes that leak visible.
            Some(node) => {
                if obs::enabled() {
                    obs::counter(obs::Counter::VfsDeadNodes, self.subtree_slots(node));
                }
                self.generation += 1;
                Ok(())
            }
            None => Err(VfsError::NotFound { path: path.to_owned() }),
        }
    }

    /// Slab slots in the subtree rooted at `node`, including `node`.
    fn subtree_slots(&self, node: u32) -> u64 {
        let mut stack = vec![node];
        let mut n = 0u64;
        while let Some(ix) = stack.pop() {
            n += 1;
            if let Slot::Dir(d) = &self.nodes[ix as usize].kind {
                stack.extend_from_slice(&d.children);
            }
        }
        n
    }

    /// Renames `from` to `to` (FTP `RNFR`/`RNTO`). The subtree keeps its
    /// slots; only the parent links and the node's name change.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if `from` is missing,
    /// [`VfsError::AlreadyExists`] if `to` is taken.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), VfsError> {
        if self.exists(to) {
            return Err(VfsError::AlreadyExists { path: to.to_owned() });
        }
        let pf = Self::canon(from)?;
        let Some(name) = pf.file_name() else {
            return Err(VfsError::BadPath { path: from.to_owned() });
        };
        let parent = self.resolve(pf.parent().as_str())?;
        if !matches!(self.nodes[parent as usize].kind, Slot::Dir(_)) {
            return Err(VfsError::NotADirectory { path: from.to_owned() });
        }
        let node = self
            .detach_child(parent, name)
            .ok_or_else(|| VfsError::NotFound { path: from.to_owned() })?;
        let pt = Self::canon(to)?;
        let Some(to_name) = pt.file_name() else {
            return Err(VfsError::BadPath { path: to.to_owned() });
        };
        let to_name = to_name.to_owned();
        let new_parent = self.descend_creating(pt.parent().as_str()).map_err(|e| match e {
            VfsError::NotADirectory { .. } => VfsError::NotADirectory { path: to.to_owned() },
            other => other,
        })?;
        self.nodes[node as usize].name = self.strings.intern(&to_name);
        match self.find_child(new_parent, &to_name) {
            // `exists(to)` was checked above and nothing has been
            // created at `to` since; insert at the sorted position.
            Ok(_) => return Err(VfsError::AlreadyExists { path: to.to_owned() }),
            Err(pos) => match &mut self.nodes[new_parent as usize].kind {
                Slot::Dir(d) => d.children.insert(pos, node),
                Slot::File(_) => unreachable!("descend_creating returns dirs"),
            },
        }
        self.generation += 1;
        Ok(())
    }

    /// Unlinks `name` from `dir`'s child list, returning its slot.
    fn detach_child(&mut self, dir: u32, name: &str) -> Option<u32> {
        let Slot::Dir(d) = &self.nodes[dir as usize].kind else { return None };
        let pos = d
            .children
            .binary_search_by(|&c| self.strings.get(self.nodes[c as usize].name).cmp(name))
            .ok()?;
        match &mut self.nodes[dir as usize].kind {
            Slot::Dir(d) => Some(d.children.remove(pos)),
            Slot::File(_) => None,
        }
    }

    /// Lists a directory's children as `(name, node)` pairs in name
    /// order.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::NotADirectory`].
    pub fn list(&self, path: &str) -> Result<DirList<'_>, VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        let ix = self.resolve(path)?;
        match &self.nodes[ix as usize].kind {
            Slot::Dir(d) => Ok(DirList { vfs: self, children: d.children.iter() }),
            Slot::File(_) => Err(VfsError::NotADirectory { path: path.to_owned() }),
        }
    }

    /// File metadata at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if absent or a directory.
    pub fn file(&self, path: &str) -> Result<FileRef<'_>, VfsError> {
        match self.node(path)? {
            NodeRef::File(f) => Ok(f),
            NodeRef::Dir(_) => Err(VfsError::NotFound { path: path.to_owned() }),
        }
    }

    /// Mutable file metadata at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if absent or a directory.
    pub fn file_mut(&mut self, path: &str) -> Result<FileMut<'_>, VfsError> {
        // Conservative: the caller receives mutable access, so any
        // cached derived data must be considered stale.
        self.generation += 1;
        let ix = self.resolve(path)?;
        match &mut self.nodes[ix as usize].kind {
            Slot::File(f) => Ok(FileMut { size: &mut f.size, perms: &mut f.perms, owner: &mut f.owner }),
            Slot::Dir(_) => Err(VfsError::NotFound { path: path.to_owned() }),
        }
    }

    /// Total number of files in the (live) tree.
    pub fn file_count(&self) -> usize {
        fn rec(vfs: &Vfs, ix: u32) -> usize {
            match &vfs.nodes[ix as usize].kind {
                Slot::File(_) => 1,
                Slot::Dir(d) => d.children.iter().map(|&c| rec(vfs, c)).sum(),
            }
        }
        rec(self, ROOT)
    }

    /// Total number of directories (excluding the root).
    pub fn dir_count(&self) -> usize {
        fn rec(vfs: &Vfs, ix: u32) -> usize {
            match &vfs.nodes[ix as usize].kind {
                Slot::File(_) => 0,
                Slot::Dir(d) => d
                    .children
                    .iter()
                    .map(|&c| match &vfs.nodes[c as usize].kind {
                        Slot::Dir(_) => 1 + rec(vfs, c),
                        Slot::File(_) => 0,
                    })
                    .sum(),
            }
        }
        rec(self, ROOT)
    }

    /// Depth-first visit of every node as `(path, node)`, siblings in
    /// name order — the same preorder the old `Vec`-returning walk
    /// produced, minus the per-node `String` materialization: one path
    /// buffer is grown and truncated across the whole traversal.
    pub fn walk(&self, mut f: impl FnMut(&str, NodeRef<'_>)) {
        let mut path = String::new();
        self.walk_rec(ROOT, &mut path, &mut f);
    }

    fn walk_rec(&self, dir: u32, path: &mut String, f: &mut impl FnMut(&str, NodeRef<'_>)) {
        let Slot::Dir(d) = &self.nodes[dir as usize].kind else { return };
        for &child in &d.children {
            let len = path.len();
            path.push('/');
            path.push_str(self.strings.get(self.nodes[child as usize].name));
            f(path, self.node_ref(child));
            self.walk_rec(child, path, f);
            path.truncate(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects `walk`'s visit order for assertions.
    fn walked(v: &Vfs) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        v.walk(|p, n| out.push((p.to_owned(), n.is_dir())));
        out
    }

    #[test]
    fn mkdir_p_and_lookup() {
        let mut v = Vfs::new();
        v.mkdir_p("/a/b/c").unwrap();
        assert!(v.is_dir("/a/b/c"));
        assert!(v.is_dir("/a"));
        assert!(!v.exists("/a/b/c/d"));
        // Idempotent.
        v.mkdir_p("/a/b/c").unwrap();
        assert_eq!(v.dir_count(), 3);
    }

    #[test]
    fn add_and_read_file() {
        let mut v = Vfs::new();
        v.add_file("/pub/readme.txt", FileMeta::public(42).with_content("hello")).unwrap();
        let f = v.file("/pub/readme.txt").unwrap();
        assert_eq!(f.size, 5); // with_content resizes
        assert_eq!(f.content, Some("hello"));
        assert_eq!(v.file_count(), 1);
    }

    #[test]
    fn file_blocks_directory_path() {
        let mut v = Vfs::new();
        v.add_file("/x", FileMeta::public(1)).unwrap();
        assert!(matches!(v.mkdir_p("/x/y"), Err(VfsError::NotADirectory { .. })));
        assert!(matches!(v.node("/x/y"), Err(VfsError::NotADirectory { .. })));
    }

    #[test]
    fn mkdir_requires_parent_and_uniqueness() {
        let mut v = Vfs::new();
        assert!(matches!(v.mkdir("/no/parent"), Err(VfsError::NotFound { .. })));
        v.mkdir("/top").unwrap();
        assert!(matches!(v.mkdir("/top"), Err(VfsError::AlreadyExists { .. })));
    }

    #[test]
    fn store_unique_appends_suffixes() {
        let mut v = Vfs::new();
        let a = v.store_unique("/up/probe.txt", FileMeta::public(1)).unwrap();
        assert_eq!(v.path_of(a), "/up/probe.txt");
        let b = v.store_unique("/up/probe.txt", FileMeta::public(1)).unwrap();
        assert_eq!(v.path_of(b), "/up/probe.txt.1");
        let c = v.store_unique("/up/probe.txt", FileMeta::public(1)).unwrap();
        assert_eq!(v.path_of(c), "/up/probe.txt.2");
        assert_eq!(v.file_count(), 3);
    }

    #[test]
    fn remove_file_and_dir() {
        let mut v = Vfs::new();
        v.add_file("/d/f1", FileMeta::public(1)).unwrap();
        v.add_file("/d/sub/f2", FileMeta::public(1)).unwrap();
        v.remove("/d/f1").unwrap();
        assert!(!v.exists("/d/f1"));
        v.remove("/d").unwrap(); // recursive
        assert!(!v.exists("/d/sub/f2"));
        assert!(matches!(v.remove("/d"), Err(VfsError::NotFound { .. })));
        assert!(matches!(v.remove("/"), Err(VfsError::BadPath { .. })));
    }

    #[test]
    fn rename_moves_subtree() {
        let mut v = Vfs::new();
        v.add_file("/a/b/file", FileMeta::public(9)).unwrap();
        v.rename("/a/b", "/c/moved").unwrap();
        assert!(v.exists("/c/moved/file"));
        assert!(!v.exists("/a/b"));
        assert!(matches!(v.rename("/missing", "/x"), Err(VfsError::NotFound { .. })));
        v.add_file("/taken", FileMeta::public(1)).unwrap();
        assert!(matches!(v.rename("/c", "/taken"), Err(VfsError::AlreadyExists { .. })));
    }

    #[test]
    fn list_is_name_ordered() {
        let mut v = Vfs::new();
        v.add_file("/d/zeta", FileMeta::public(1)).unwrap();
        v.add_file("/d/alpha", FileMeta::public(1)).unwrap();
        v.mkdir_p("/d/beta").unwrap();
        let names: Vec<&str> = v.list("/d").unwrap().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "beta", "zeta"]);
        assert!(matches!(v.list("/d/alpha"), Err(VfsError::NotADirectory { .. })));
    }

    #[test]
    fn walk_visits_everything() {
        let mut v = Vfs::new();
        v.add_file("/a/f1", FileMeta::public(1)).unwrap();
        v.add_file("/a/b/f2", FileMeta::public(1)).unwrap();
        let paths: Vec<String> = walked(&v).into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["/a", "/a/b", "/a/b/f2", "/a/f1"]);
    }

    #[test]
    fn counts() {
        let mut v = Vfs::new();
        v.add_file("/a/f1", FileMeta::public(1)).unwrap();
        v.add_file("/a/b/f2", FileMeta::public(1)).unwrap();
        v.mkdir_p("/empty/nested").unwrap();
        assert_eq!(v.file_count(), 2);
        assert_eq!(v.dir_count(), 4); // a, a/b, empty, empty/nested
    }

    #[test]
    fn bad_paths_rejected() {
        let mut v = Vfs::new();
        assert!(matches!(v.mkdir_p("/../escape"), Err(VfsError::BadPath { .. })));
        assert!(matches!(v.add_file("/", FileMeta::public(1)), Err(VfsError::BadPath { .. })));
    }

    #[test]
    fn owner_display() {
        assert_eq!(Owner::Root.to_string(), "root");
        assert_eq!(Owner::Ftp.to_string(), "ftp");
        assert_eq!(Owner::Anonymous.to_string(), "ftp");
        assert_eq!(Owner::User(3).to_string(), "user3");
    }

    #[test]
    fn file_mut_updates_in_place() {
        let mut v = Vfs::new();
        v.add_file("/f", FileMeta::public(1).with_owner(Owner::Anonymous)).unwrap();
        *v.file_mut("/f").unwrap().owner = Owner::Ftp;
        assert_eq!(v.file("/f").unwrap().owner, Owner::Ftp);
        assert!(v.file_mut("/nope").is_err());
    }

    #[test]
    fn interner_dedups_and_counts_bytes() {
        let mut v = Vfs::new();
        let before = v.interned_bytes();
        v.add_file("/x/a.txt", FileMeta::public(1)).unwrap();
        let after_first = v.interned_bytes();
        assert!(after_first > before);
        // Same names elsewhere in the tree intern to the same spans.
        v.add_file("/y/a.txt", FileMeta::public(1)).unwrap();
        assert_eq!(v.interned_bytes(), after_first + 1, "only the new name byte 'y'");
        assert_eq!(v.node_count(), 1 + 4); // root + x, a.txt, y, a.txt
    }

    #[test]
    fn content_equality_ignores_history() {
        let mut a = Vfs::new();
        let mut b = Vfs::new();
        a.add_file("/d/one", FileMeta::public(1)).unwrap();
        a.add_file("/d/two", FileMeta::public(2)).unwrap();
        // Same tree, different construction order and extra churn.
        b.add_file("/d/two", FileMeta::public(2)).unwrap();
        b.add_file("/d/tmp", FileMeta::public(9)).unwrap();
        b.remove("/d/tmp").unwrap();
        b.add_file("/d/one", FileMeta::public(1)).unwrap();
        assert_eq!(a, b);
        b.add_file("/d/one", FileMeta::public(7)).unwrap();
        assert_ne!(a, b);
    }
}
