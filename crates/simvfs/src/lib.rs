//! A virtual filesystem with UNIX permissions for simulated FTP servers.
//!
//! Every simulated server in the reproduction publishes a [`Vfs`]: a tree
//! of directories and files with permission bits, owners, sizes and
//! modification times. File *contents* are deliberately not stored —
//! matching the paper's ethics stance of not bulk-downloading files — but
//! each file can carry a small optional `content` used where the paper
//! did download or upload specific artifacts (write probes, the
//! `ftpchk3` stages, `robots.txt`).
//!
//! The metadata here is exactly what directory listings expose: the
//! enumerator reconstructs its view of a server from rendered listings,
//! never from this structure directly, so the measurement pipeline is
//! honest about what a real client could observe.
//!
//! # Example
//!
//! ```
//! use simvfs::{Vfs, FileMeta, Owner};
//!
//! let mut vfs = Vfs::new();
//! vfs.mkdir_p("/pub/photos")?;
//! vfs.add_file("/pub/photos/DSC_0001.JPG", FileMeta::public(2_400_000))?;
//! assert_eq!(vfs.list("/pub/photos")?.len(), 1);
//! assert_eq!(vfs.file_count(), 1);
//! # Ok::<(), simvfs::VfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::print_stdout, clippy::print_stderr)]

use ftp_proto::listing::Permissions;
use ftp_proto::FtpPath;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Who owns a node — rendered as the owner column of UNIX listings and
/// used by upload-approval quirks (Pure-FTPd refuses to serve files still
/// owned by [`Owner::Anonymous`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Owner {
    /// `root`.
    Root,
    /// The FTP service account, `ftp`.
    #[default]
    Ftp,
    /// An anonymous upload not yet approved by the administrator.
    Anonymous,
    /// A local user account (uid rendered as `user<N>`).
    User(u16),
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Root => f.write_str("root"),
            Owner::Ftp => f.write_str("ftp"),
            Owner::Anonymous => f.write_str("ftp"),
            Owner::User(n) => write!(f, "user{n}"),
        }
    }
}

/// Metadata for a file node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// Size in bytes.
    pub size: u64,
    /// Permission bits.
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings (`"Jun 18  2015"`).
    pub mtime: String,
    /// Optional small content (write probes, scripts, robots.txt).
    pub content: Option<String>,
}

impl FileMeta {
    /// A world-readable (`0644`) file of the given size.
    pub fn public(size: u64) -> Self {
        FileMeta {
            size,
            perms: Permissions::public_file(),
            owner: Owner::Ftp,
            mtime: "Jun 18  2015".to_owned(),
            content: None,
        }
    }

    /// An owner-only (`0600`) file of the given size.
    pub fn private(size: u64) -> Self {
        FileMeta { perms: Permissions::private_file(), ..FileMeta::public(size) }
    }

    /// Builder-style: replaces the content (and size, to match).
    pub fn with_content(mut self, content: impl Into<String>) -> Self {
        let content = content.into();
        self.size = content.len() as u64;
        self.content = Some(content);
        self
    }

    /// Builder-style: replaces the owner.
    pub fn with_owner(mut self, owner: Owner) -> Self {
        self.owner = owner;
        self
    }

    /// Builder-style: replaces the permissions.
    pub fn with_perms(mut self, perms: Permissions) -> Self {
        self.perms = perms;
        self
    }

    /// Builder-style: replaces the mtime text.
    pub fn with_mtime(mut self, mtime: impl Into<String>) -> Self {
        self.mtime = mtime.into();
        self
    }
}

/// Metadata for a directory node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirMeta {
    /// Permission bits (other-read governs anonymous LIST).
    pub perms: Permissions,
    /// Owner account.
    pub owner: Owner,
    /// Modification time as rendered in listings.
    pub mtime: String,
}

impl Default for DirMeta {
    fn default() -> Self {
        DirMeta {
            perms: Permissions::public_dir(),
            owner: Owner::Ftp,
            mtime: "Jun 18  2015".to_owned(),
        }
    }
}

/// A node in the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A regular file.
    File(FileMeta),
    /// A directory with named children.
    Dir {
        /// Directory metadata.
        meta: DirMeta,
        /// Child name → node.
        children: BTreeMap<String, Node>,
    },
}

impl Node {
    /// True for directory nodes.
    pub fn is_dir(&self) -> bool {
        matches!(self, Node::Dir { .. })
    }

    fn empty_dir() -> Node {
        Node::Dir { meta: DirMeta::default(), children: BTreeMap::new() }
    }
}

/// Errors from [`Vfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VfsError {
    /// The path (or one of its parents) does not exist.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// A file exists where a directory is required (or vice versa).
    NotADirectory {
        /// The conflicting path.
        path: String,
    },
    /// Target name already exists.
    AlreadyExists {
        /// The conflicting path.
        path: String,
    },
    /// The path string itself is malformed.
    BadPath {
        /// The malformed input.
        path: String,
    },
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            VfsError::NotADirectory { path } => write!(f, "not a directory: {path}"),
            VfsError::AlreadyExists { path } => write!(f, "already exists: {path}"),
            VfsError::BadPath { path } => write!(f, "malformed path: {path}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// The virtual filesystem: a tree rooted at `/`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vfs {
    root: Node,
    /// Bumped on every successful mutation. Callers caching data derived
    /// from the tree (e.g. rendered `LIST` bodies) compare generations
    /// to invalidate in O(1) instead of re-walking.
    generation: u64,
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

/// Equality compares tree *content* only: two filesystems with the same
/// nodes are equal regardless of how many mutations produced them.
impl PartialEq for Vfs {
    fn eq(&self, other: &Self) -> bool {
        self.root == other.root
    }
}
impl Eq for Vfs {}

impl Vfs {
    /// An empty filesystem containing only `/`.
    pub fn new() -> Self {
        Vfs { root: Node::empty_dir(), generation: 0 }
    }

    /// Mutation counter; changes whenever the tree may have changed.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn canon(path: &str) -> Result<FtpPath, VfsError> {
        path.parse().map_err(|_| VfsError::BadPath { path: path.to_owned() })
    }

    /// True if `path` is already in the canonical form [`canon`] would
    /// produce, so lookups can walk its segments without allocating a
    /// parsed path first. Control bytes disqualify (they must surface as
    /// [`VfsError::BadPath`] through the slow path).
    fn is_canonical(path: &str) -> bool {
        path == "/"
            || (path.len() > 1
                && path.starts_with('/')
                && !path.ends_with('/')
                && path[1..].split('/').all(|seg| {
                    !seg.is_empty()
                        && seg != "."
                        && seg != ".."
                        && !seg.bytes().any(|b| matches!(b, 0 | b'\r' | b'\n'))
                }))
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if any component is missing,
    /// [`VfsError::NotADirectory`] if a file appears mid-path.
    pub fn node(&self, path: &str) -> Result<&Node, VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        if Self::is_canonical(path) {
            return Self::descend(&self.root, path.split('/').filter(|s| !s.is_empty()), path);
        }
        let p = Self::canon(path)?;
        Self::descend(&self.root, p.components(), path)
    }

    fn descend<'t, 'p>(
        mut cur: &'t Node,
        comps: impl Iterator<Item = &'p str>,
        path: &str,
    ) -> Result<&'t Node, VfsError> {
        for comp in comps {
            match cur {
                Node::Dir { children, .. } => {
                    cur = children
                        .get(comp)
                        .ok_or_else(|| VfsError::NotFound { path: path.to_owned() })?;
                }
                Node::File(_) => {
                    return Err(VfsError::NotADirectory { path: path.to_owned() })
                }
            }
        }
        Ok(cur)
    }

    fn node_mut(&mut self, path: &str) -> Result<&mut Node, VfsError> {
        if Self::is_canonical(path) {
            return Self::descend_mut(&mut self.root, path.split('/').filter(|s| !s.is_empty()), path);
        }
        let p = Self::canon(path)?;
        Self::descend_mut(&mut self.root, p.components(), path)
    }

    fn descend_mut<'t, 'p>(
        mut cur: &'t mut Node,
        comps: impl Iterator<Item = &'p str>,
        path: &str,
    ) -> Result<&'t mut Node, VfsError> {
        for comp in comps {
            match cur {
                Node::Dir { children, .. } => {
                    cur = children
                        .get_mut(comp)
                        .ok_or_else(|| VfsError::NotFound { path: path.to_owned() })?;
                }
                Node::File(_) => {
                    return Err(VfsError::NotADirectory { path: path.to_owned() })
                }
            }
        }
        Ok(cur)
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.node(path).is_ok()
    }

    /// True if `path` exists and is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(self.node(path), Ok(Node::Dir { .. }))
    }

    /// Creates a directory and all missing parents (like `mkdir -p`).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if a file blocks the path.
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        let p = Self::canon(path)?;
        let mut cur = &mut self.root;
        for comp in p.components() {
            match cur {
                Node::Dir { children, .. } => {
                    // Key is cloned only when the directory is actually
                    // created; re-traversing existing trees stays free.
                    if !children.contains_key(comp) {
                        children.insert(comp.to_owned(), Node::empty_dir());
                    }
                    cur = children.get_mut(comp).expect("ensured above");
                    if let Node::File(_) = cur {
                        return Err(VfsError::NotADirectory { path: path.to_owned() });
                    }
                }
                Node::File(_) => {
                    return Err(VfsError::NotADirectory { path: path.to_owned() })
                }
            }
        }
        self.generation += 1;
        Ok(())
    }

    /// Creates a directory whose parent must already exist (FTP `MKD`).
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if the name is taken;
    /// [`VfsError::NotFound`]/[`VfsError::NotADirectory`] for bad parents.
    pub fn mkdir(&mut self, path: &str) -> Result<(), VfsError> {
        let p = Self::canon(path)?;
        let name = p
            .file_name()
            .ok_or_else(|| VfsError::BadPath { path: path.to_owned() })?
            .to_owned();
        let parent = self.node_mut(p.parent().as_str())?;
        let res = match parent {
            Node::Dir { children, .. } => {
                if children.contains_key(&name) {
                    return Err(VfsError::AlreadyExists { path: path.to_owned() });
                }
                children.insert(name, Node::empty_dir());
                Ok(())
            }
            Node::File(_) => Err(VfsError::NotADirectory { path: path.to_owned() }),
        };
        if res.is_ok() {
            self.generation += 1;
        }
        res
    }

    /// Adds a file, creating parent directories as needed. Overwrites an
    /// existing file at the same path.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if the target is an existing directory
    /// or a file blocks a parent component.
    pub fn add_file(&mut self, path: &str, meta: FileMeta) -> Result<(), VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        // One parse and one walk: missing parents are created in the same
        // descent that places the file, so the hot worldgen insert path
        // never re-parses the parent or re-traverses existing prefixes.
        let p = Self::canon(path)?;
        if p.file_name().is_none() {
            return Err(VfsError::BadPath { path: path.to_owned() });
        }
        let mut cur = &mut self.root;
        let mut comps = p.components().peekable();
        while let Some(comp) = comps.next() {
            let children = match cur {
                Node::Dir { children, .. } => children,
                Node::File(_) => {
                    return Err(VfsError::NotADirectory { path: path.to_owned() })
                }
            };
            if comps.peek().is_none() {
                if let Some(Node::Dir { .. }) = children.get(comp) {
                    return Err(VfsError::NotADirectory { path: path.to_owned() });
                }
                children.insert(comp.to_owned(), Node::File(meta));
                self.generation += 1;
                return Ok(());
            }
            if !children.contains_key(comp) {
                children.insert(comp.to_owned(), Node::empty_dir());
            }
            cur = children.get_mut(comp).expect("ensured above");
        }
        unreachable!("file_name() guaranteed a final component")
    }

    /// Stores an upload with the *unique-suffix* quirk: if `name` exists,
    /// the stored file becomes `name.1`, then `name.2`, … (the behavior
    /// §VI-A uses as a world-writable indicator). Returns the actual
    /// stored path.
    ///
    /// # Errors
    ///
    /// Propagates [`Vfs::add_file`] errors.
    pub fn store_unique(&mut self, path: &str, meta: FileMeta) -> Result<String, VfsError> {
        if !self.exists(path) {
            self.add_file(path, meta)?;
            return Ok(Self::canon(path)?.as_str().to_owned());
        }
        for n in 1u32.. {
            let candidate = format!("{path}.{n}");
            if !self.exists(&candidate) {
                self.add_file(&candidate, meta)?;
                return Ok(candidate);
            }
        }
        unreachable!("u32 suffix space exhausted")
    }

    /// Removes a file or (recursively) a directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if absent; [`VfsError::BadPath`] for `/`.
    pub fn remove(&mut self, path: &str) -> Result<(), VfsError> {
        let p = Self::canon(path)?;
        let name = p
            .file_name()
            .ok_or_else(|| VfsError::BadPath { path: path.to_owned() })?
            .to_owned();
        let parent = self.node_mut(p.parent().as_str())?;
        let res = match parent {
            Node::Dir { children, .. } => children
                .remove(&name)
                .map(|_| ())
                .ok_or_else(|| VfsError::NotFound { path: path.to_owned() }),
            Node::File(_) => Err(VfsError::NotADirectory { path: path.to_owned() }),
        };
        if res.is_ok() {
            self.generation += 1;
        }
        res
    }

    /// Renames `from` to `to` (FTP `RNFR`/`RNTO`).
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if `from` is missing,
    /// [`VfsError::AlreadyExists`] if `to` is taken.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), VfsError> {
        if self.exists(to) {
            return Err(VfsError::AlreadyExists { path: to.to_owned() });
        }
        let pf = Self::canon(from)?;
        let name = pf
            .file_name()
            .ok_or_else(|| VfsError::BadPath { path: from.to_owned() })?
            .to_owned();
        // Detach.
        let node = {
            let parent = self.node_mut(pf.parent().as_str())?;
            match parent {
                Node::Dir { children, .. } => children
                    .remove(&name)
                    .ok_or_else(|| VfsError::NotFound { path: from.to_owned() })?,
                Node::File(_) => return Err(VfsError::NotADirectory { path: from.to_owned() }),
            }
        };
        // Attach.
        let pt = Self::canon(to)?;
        let to_name = pt
            .file_name()
            .ok_or_else(|| VfsError::BadPath { path: to.to_owned() })?
            .to_owned();
        self.mkdir_p(pt.parent().as_str())?;
        let res = match self.node_mut(pt.parent().as_str())? {
            Node::Dir { children, .. } => {
                children.insert(to_name, node);
                Ok(())
            }
            Node::File(_) => Err(VfsError::NotADirectory { path: to.to_owned() }),
        };
        if res.is_ok() {
            self.generation += 1;
        }
        res
    }

    /// Lists a directory's children as `(name, node)` pairs in name
    /// order.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] / [`VfsError::NotADirectory`].
    pub fn list(&self, path: &str) -> Result<Vec<(&str, &Node)>, VfsError> {
        if obs::enabled() {
            obs::counter(obs::Counter::VfsOps, 1);
        }
        match self.node(path)? {
            Node::Dir { children, .. } => {
                Ok(children.iter().map(|(k, v)| (k.as_str(), v)).collect())
            }
            Node::File(_) => Err(VfsError::NotADirectory { path: path.to_owned() }),
        }
    }

    /// File metadata at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if absent or a directory.
    pub fn file(&self, path: &str) -> Result<&FileMeta, VfsError> {
        match self.node(path)? {
            Node::File(meta) => Ok(meta),
            Node::Dir { .. } => Err(VfsError::NotFound { path: path.to_owned() }),
        }
    }

    /// Mutable file metadata at `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if absent or a directory.
    pub fn file_mut(&mut self, path: &str) -> Result<&mut FileMeta, VfsError> {
        // Conservative: the caller receives mutable access, so any
        // cached derived data must be considered stale.
        self.generation += 1;
        match self.node_mut(path)? {
            Node::File(meta) => Ok(meta),
            Node::Dir { .. } => Err(VfsError::NotFound { path: path.to_owned() }),
        }
    }

    /// Total number of files in the tree.
    pub fn file_count(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::File(_) => 1,
                Node::Dir { children, .. } => children.values().map(walk).sum(),
            }
        }
        walk(&self.root)
    }

    /// Total number of directories (excluding the root).
    pub fn dir_count(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::File(_) => 0,
                Node::Dir { children, .. } => {
                    children.values().map(|c| if c.is_dir() { 1 + walk(c) } else { 0 }).sum()
                }
            }
        }
        walk(&self.root)
    }

    /// Depth-first visit of every node as `(path, node)`.
    pub fn walk(&self) -> Vec<(String, &Node)> {
        let mut out = Vec::new();
        fn rec<'a>(prefix: &str, node: &'a Node, out: &mut Vec<(String, &'a Node)>) {
            if let Node::Dir { children, .. } = node {
                for (name, child) in children {
                    let path = if prefix == "/" {
                        format!("/{name}")
                    } else {
                        format!("{prefix}/{name}")
                    };
                    out.push((path.clone(), child));
                    rec(&path, child, out);
                }
            }
        }
        rec("/", &self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdir_p_and_lookup() {
        let mut v = Vfs::new();
        v.mkdir_p("/a/b/c").unwrap();
        assert!(v.is_dir("/a/b/c"));
        assert!(v.is_dir("/a"));
        assert!(!v.exists("/a/b/c/d"));
        // Idempotent.
        v.mkdir_p("/a/b/c").unwrap();
        assert_eq!(v.dir_count(), 3);
    }

    #[test]
    fn add_and_read_file() {
        let mut v = Vfs::new();
        v.add_file("/pub/readme.txt", FileMeta::public(42).with_content("hello")).unwrap();
        let f = v.file("/pub/readme.txt").unwrap();
        assert_eq!(f.size, 5); // with_content resizes
        assert_eq!(f.content.as_deref(), Some("hello"));
        assert_eq!(v.file_count(), 1);
    }

    #[test]
    fn file_blocks_directory_path() {
        let mut v = Vfs::new();
        v.add_file("/x", FileMeta::public(1)).unwrap();
        assert!(matches!(v.mkdir_p("/x/y"), Err(VfsError::NotADirectory { .. })));
        assert!(matches!(v.node("/x/y"), Err(VfsError::NotADirectory { .. })));
    }

    #[test]
    fn mkdir_requires_parent_and_uniqueness() {
        let mut v = Vfs::new();
        assert!(matches!(v.mkdir("/no/parent"), Err(VfsError::NotFound { .. })));
        v.mkdir("/top").unwrap();
        assert!(matches!(v.mkdir("/top"), Err(VfsError::AlreadyExists { .. })));
    }

    #[test]
    fn store_unique_appends_suffixes() {
        let mut v = Vfs::new();
        assert_eq!(v.store_unique("/up/probe.txt", FileMeta::public(1)).unwrap(), "/up/probe.txt");
        assert_eq!(
            v.store_unique("/up/probe.txt", FileMeta::public(1)).unwrap(),
            "/up/probe.txt.1"
        );
        assert_eq!(
            v.store_unique("/up/probe.txt", FileMeta::public(1)).unwrap(),
            "/up/probe.txt.2"
        );
        assert_eq!(v.file_count(), 3);
    }

    #[test]
    fn remove_file_and_dir() {
        let mut v = Vfs::new();
        v.add_file("/d/f1", FileMeta::public(1)).unwrap();
        v.add_file("/d/sub/f2", FileMeta::public(1)).unwrap();
        v.remove("/d/f1").unwrap();
        assert!(!v.exists("/d/f1"));
        v.remove("/d").unwrap(); // recursive
        assert!(!v.exists("/d/sub/f2"));
        assert!(matches!(v.remove("/d"), Err(VfsError::NotFound { .. })));
        assert!(matches!(v.remove("/"), Err(VfsError::BadPath { .. })));
    }

    #[test]
    fn rename_moves_subtree() {
        let mut v = Vfs::new();
        v.add_file("/a/b/file", FileMeta::public(9)).unwrap();
        v.rename("/a/b", "/c/moved").unwrap();
        assert!(v.exists("/c/moved/file"));
        assert!(!v.exists("/a/b"));
        assert!(matches!(v.rename("/missing", "/x"), Err(VfsError::NotFound { .. })));
        v.add_file("/taken", FileMeta::public(1)).unwrap();
        assert!(matches!(v.rename("/c", "/taken"), Err(VfsError::AlreadyExists { .. })));
    }

    #[test]
    fn list_is_name_ordered() {
        let mut v = Vfs::new();
        v.add_file("/d/zeta", FileMeta::public(1)).unwrap();
        v.add_file("/d/alpha", FileMeta::public(1)).unwrap();
        v.mkdir_p("/d/beta").unwrap();
        let names: Vec<&str> = v.list("/d").unwrap().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["alpha", "beta", "zeta"]);
        assert!(matches!(v.list("/d/alpha"), Err(VfsError::NotADirectory { .. })));
    }

    #[test]
    fn walk_visits_everything() {
        let mut v = Vfs::new();
        v.add_file("/a/f1", FileMeta::public(1)).unwrap();
        v.add_file("/a/b/f2", FileMeta::public(1)).unwrap();
        let paths: Vec<String> = v.walk().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["/a", "/a/b", "/a/b/f2", "/a/f1"]);
    }

    #[test]
    fn counts() {
        let mut v = Vfs::new();
        v.add_file("/a/f1", FileMeta::public(1)).unwrap();
        v.add_file("/a/b/f2", FileMeta::public(1)).unwrap();
        v.mkdir_p("/empty/nested").unwrap();
        assert_eq!(v.file_count(), 2);
        assert_eq!(v.dir_count(), 4); // a, a/b, empty, empty/nested
    }

    #[test]
    fn bad_paths_rejected() {
        let mut v = Vfs::new();
        assert!(matches!(v.mkdir_p("/../escape"), Err(VfsError::BadPath { .. })));
        assert!(matches!(v.add_file("/", FileMeta::public(1)), Err(VfsError::BadPath { .. })));
    }

    #[test]
    fn owner_display() {
        assert_eq!(Owner::Root.to_string(), "root");
        assert_eq!(Owner::Ftp.to_string(), "ftp");
        assert_eq!(Owner::Anonymous.to_string(), "ftp");
        assert_eq!(Owner::User(3).to_string(), "user3");
    }

    #[test]
    fn file_mut_updates_in_place() {
        let mut v = Vfs::new();
        v.add_file("/f", FileMeta::public(1).with_owner(Owner::Anonymous)).unwrap();
        v.file_mut("/f").unwrap().owner = Owner::Ftp;
        assert_eq!(v.file("/f").unwrap().owner, Owner::Ftp);
        assert!(v.file_mut("/nope").is_err());
    }
}
